#include "spatial/rw_tree.h"

#include <algorithm>
#include <numeric>

namespace ml4db {
namespace spatial {

size_t RwPolicy::ChooseSubtree(const std::vector<ChildInfo>& children,
                               const Rect& rect) {
  // Lexicographic: minimize the increase in expected query hits of the
  // child MBR; ties (common when MBRs are small relative to queries) fall
  // back to the geometric default, which keeps the tree healthy where the
  // workload model is indifferent.
  size_t best = 0;
  double best_delta = std::numeric_limits<double>::infinity();
  double best_geo = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < children.size(); ++i) {
    const Rect enlarged = Union(children[i].mbr, rect);
    const double delta = HitCount(enlarged) - HitCount(children[i].mbr);
    const double geo =
        Enlargement(children[i].mbr, rect) + 0.05 * children[i].mbr.Area();
    if (delta < best_delta || (delta == best_delta && geo < best_geo)) {
      best = i;
      best_delta = delta;
      best_geo = geo;
    }
  }
  return best;
}

std::vector<size_t> RwPolicy::SplitNode(const std::vector<Rect>& rects,
                                        size_t min_fill) {
  const size_t n = rects.size();
  // Evaluate axis orderings × split positions by expected workload hits of
  // the two group MBRs (the learned cost model), pick the cheapest.
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> best_group;
  for (int mode = 0; mode < 4; ++mode) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      switch (mode) {
        case 0: return rects[a].xlo < rects[b].xlo;
        case 1: return rects[a].xhi < rects[b].xhi;
        case 2: return rects[a].ylo < rects[b].ylo;
        default: return rects[a].yhi < rects[b].yhi;
      }
    });
    std::vector<Rect> prefix(n), suffix(n);
    Rect acc = Rect::Empty();
    for (size_t i = 0; i < n; ++i) {
      acc = Union(acc, rects[order[i]]);
      prefix[i] = acc;
    }
    acc = Rect::Empty();
    for (size_t i = n; i-- > 0;) {
      acc = Union(acc, rects[order[i]]);
      suffix[i] = acc;
    }
    for (size_t split = min_fill; split + min_fill <= n; ++split) {
      const Rect& a = prefix[split - 1];
      const Rect& b = suffix[split];
      // Workload hits dominate; geometric quality (overlap + area) breaks
      // the frequent all-zero-hit ties so splits stay healthy where the
      // workload model is indifferent.
      const double geo = IntersectionArea(a, b) * 10.0 + a.Area() + b.Area();
      const double cost = (HitCount(a) + HitCount(b)) + geo * 1e-3;
      if (cost < best_cost) {
        best_cost = cost;
        best_group.assign(order.begin(), order.begin() + split);
      }
    }
  }
  return best_group;
}

}  // namespace spatial
}  // namespace ml4db
