// RLR-tree (Gu et al. 2023; paper §3.2, ML-enhanced insertion): keep the
// R-tree structure, replace the ChooseSubtree and SplitNode heuristics with
// reinforcement-learned policies over geometric features. We use linear
// Q-learning: the agent picks among the top candidate children (resp.
// candidate split orderings) from features (area/margin/overlap deltas,
// occupancy) and is rewarded for avoiding enlargement and overlap — the
// signals that drive query I/O.

#ifndef ML4DB_SPATIAL_RLR_TREE_H_
#define ML4DB_SPATIAL_RLR_TREE_H_

#include <memory>

#include "ml/qlearning.h"
#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// RL-learned insertion policy.
class RlrPolicy : public RTreePolicy {
 public:
  struct Options {
    size_t top_k = 4;          ///< ChooseSubtree candidates considered
    double overlap_weight = 3.0;
    double lr = 0.02;
    double epsilon = 0.3;      ///< initial exploration while training
    double epsilon_decay = 0.9995;
  };

  RlrPolicy(Options options, uint64_t seed);

  /// Training mode: epsilon-greedy exploration + TD updates. Serving mode:
  /// pure greedy. Train while bulk-inserting a training prefix, then freeze.
  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  size_t ChooseSubtree(const std::vector<ChildInfo>& children,
                       const Rect& rect) override;
  std::vector<size_t> SplitNode(const std::vector<Rect>& rects,
                                size_t min_fill) override;

  /// Number of TD updates applied so far (diagnostics).
  size_t updates() const { return updates_; }

 private:
  static constexpr size_t kChooseFeatures = 6;
  static constexpr size_t kSplitFeatures = 4;
  static constexpr size_t kSplitActions = 4;  // sort by xlo/xhi/ylo/yhi

  /// Epsilon-greedy (training) / greedy (serving) pick over candidate
  /// feature vectors under the shared scorer of `q`.
  size_t SelectCandidate(ml::LinearQLearner& q,
                         const std::vector<ml::Vec>& feats, bool explore);

  Options options_;
  bool training_ = true;
  size_t updates_ = 0;
  ml::LinearQLearner choose_q_;
  ml::LinearQLearner split_q_;
  Rng rng_{0x515aULL};
};

/// Convenience: an RTree wired with an RlrPolicy, with a training phase.
class RlrTree {
 public:
  RlrTree(RTree::Options tree_options, RlrPolicy::Options policy_options,
          uint64_t seed);

  /// Trains the policy by inserting `training_entries` into a *scratch*
  /// tree with epsilon-greedy exploration (as the RLR-tree paper trains on
  /// a reference tree), then freezes the policy and resets this tree —
  /// exploration mistakes never pollute the serving tree. Insert the real
  /// data afterwards.
  void TrainAndFreeze(const std::vector<SpatialEntry>& training_entries);

  void Insert(const SpatialEntry& e) { tree_.Insert(e); }
  QueryStats RangeQuery(const Rect& q) const { return tree_.RangeQuery(q); }
  QueryStats KnnQuery(const Point& p, size_t k) const {
    return tree_.KnnQuery(p, k);
  }
  const RTree& tree() const { return tree_; }
  RlrPolicy& policy() { return *policy_; }

 private:
  RTree::Options tree_options_;
  std::shared_ptr<RlrPolicy> policy_;
  RTree tree_;
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_RLR_TREE_H_
