#include "spatial/lisa_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ml4db {
namespace spatial {

namespace {

// Boundaries at the q-quantiles of vals (vals is consumed/sorted).
std::vector<double> QuantileBounds(std::vector<double> vals, size_t parts) {
  std::sort(vals.begin(), vals.end());
  std::vector<double> bounds(parts + 1);
  bounds[0] = -std::numeric_limits<double>::infinity();
  bounds[parts] = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < parts; ++i) {
    const size_t pos = std::min(vals.size() - 1, i * vals.size() / parts);
    bounds[i] = vals.empty() ? 0.0 : vals[pos];
  }
  return bounds;
}

}  // namespace

Status LisaIndex::Build(const std::vector<Point>& points,
                        const std::vector<uint64_t>& ids) {
  if (points.size() != ids.size()) {
    return Status::InvalidArgument("points/ids size mismatch");
  }
  total_ = points.size();
  if (total_ == 0) {
    x_bounds_.assign(grid_ + 1, 0.0);
    y_bounds_.assign(grid_, std::vector<double>(grid_ + 1, 0.0));
    cells_.assign(grid_, std::vector<Cell>(grid_));
    return Status::OK();
  }
  std::vector<double> xs(total_);
  for (size_t i = 0; i < total_; ++i) xs[i] = points[i].x;
  x_bounds_ = QuantileBounds(std::move(xs), grid_);

  // Group points by strip, then cut each strip by y-quantiles.
  std::vector<std::vector<size_t>> strip_members(grid_);
  for (size_t i = 0; i < total_; ++i) {
    strip_members[StripOf(points[i].x)].push_back(i);
  }
  y_bounds_.assign(grid_, {});
  cells_.assign(grid_, {});
  for (size_t s = 0; s < grid_; ++s) {
    std::vector<double> ys;
    ys.reserve(strip_members[s].size());
    for (size_t i : strip_members[s]) ys.push_back(points[i].y);
    y_bounds_[s] = QuantileBounds(std::move(ys), grid_);
    cells_[s].assign(grid_, {});
    for (size_t i : strip_members[s]) {
      Cell& c = cells_[s][CellOf(s, points[i].y)];
      c.points.push_back(points[i]);
      c.ids.push_back(ids[i]);
    }
  }
  return Status::OK();
}

size_t LisaIndex::StripOf(double x) const {
  // Last boundary <= x; bounds_[0] = -inf so the result is in [0, grid_).
  const auto it = std::upper_bound(x_bounds_.begin(), x_bounds_.end(), x);
  const size_t idx = static_cast<size_t>(it - x_bounds_.begin());
  return std::min(grid_ - 1, idx == 0 ? 0 : idx - 1);
}

size_t LisaIndex::CellOf(size_t strip, double y) const {
  const auto& b = y_bounds_[strip];
  const auto it = std::upper_bound(b.begin(), b.end(), y);
  const size_t idx = static_cast<size_t>(it - b.begin());
  return std::min(grid_ - 1, idx == 0 ? 0 : idx - 1);
}

QueryStats LisaIndex::RangeQuery(const Rect& query) const {
  QueryStats stats;
  if (total_ == 0) return stats;
  const size_t s_lo = StripOf(query.xlo);
  const size_t s_hi = StripOf(query.xhi);
  for (size_t s = s_lo; s <= s_hi && s < grid_; ++s) {
    const size_t c_lo = CellOf(s, query.ylo);
    const size_t c_hi = CellOf(s, query.yhi);
    for (size_t c = c_lo; c <= c_hi && c < grid_; ++c) {
      const Cell& cell = cells_[s][c];
      if (cell.points.empty()) continue;
      ++stats.nodes_accessed;
      for (size_t i = 0; i < cell.points.size(); ++i) {
        if (query.ContainsPoint(cell.points[i])) {
          stats.results.push_back(cell.ids[i]);
        }
      }
    }
  }
  return stats;
}

QueryStats LisaIndex::KnnQuery(const Point& p, size_t k) const {
  QueryStats stats;
  if (total_ == 0 || k == 0) return stats;
  const size_t ps = StripOf(p.x);
  const size_t pc = CellOf(ps, p.y);
  std::vector<std::pair<double, uint64_t>> best;  // max-heap via sort
  auto consider_cell = [&](size_t s, size_t c) {
    const Cell& cell = cells_[s][c];
    if (cell.points.empty()) return;
    ++stats.nodes_accessed;
    for (size_t i = 0; i < cell.points.size(); ++i) {
      best.emplace_back(Dist2(p, cell.points[i]), cell.ids[i]);
    }
  };
  // Expanding rings of cells until the kth distance is covered by the ring
  // boundary distance (conservative: cell bounds come from quantiles, so we
  // use actual cell rectangle bounds for the stop test).
  size_t ring = 0;
  const size_t max_ring = 2 * grid_;
  double kth = std::numeric_limits<double>::infinity();
  while (ring <= max_ring) {
    bool any = false;
    for (int64_t ds = -static_cast<int64_t>(ring);
         ds <= static_cast<int64_t>(ring); ++ds) {
      for (int64_t dc = -static_cast<int64_t>(ring);
           dc <= static_cast<int64_t>(ring); ++dc) {
        if (std::max(std::llabs(ds), std::llabs(dc)) !=
            static_cast<int64_t>(ring)) {
          continue;  // ring shell only
        }
        const int64_t s = static_cast<int64_t>(ps) + ds;
        const int64_t c = static_cast<int64_t>(pc) + dc;
        if (s < 0 || c < 0 || s >= static_cast<int64_t>(grid_) ||
            c >= static_cast<int64_t>(grid_)) {
          continue;
        }
        consider_cell(static_cast<size_t>(s), static_cast<size_t>(c));
        any = true;
      }
    }
    if (best.size() >= k) {
      std::nth_element(best.begin(), best.begin() + k - 1, best.end());
      kth = best[k - 1].first;
      // Conservative stop: the next ring is at least (ring) strips away;
      // estimate min distance via the closest boundary of the explored box.
      // Compute the explored rectangle in coordinate space.
      const size_t slo = ps > ring ? ps - ring : 0;
      const size_t shi = std::min(grid_ - 1, ps + ring);
      const size_t clo = pc > ring ? pc - ring : 0;
      const size_t chi = std::min(grid_ - 1, pc + ring);
      const double xlo = x_bounds_[slo];
      const double xhi = x_bounds_[shi + 1];
      const double ylo = y_bounds_[ps][clo];
      const double yhi = y_bounds_[ps][chi + 1];
      double bound2 = std::numeric_limits<double>::infinity();
      if (std::isfinite(xlo)) bound2 = std::min(bound2, (p.x - xlo) * (p.x - xlo));
      if (std::isfinite(xhi)) bound2 = std::min(bound2, (xhi - p.x) * (xhi - p.x));
      if (std::isfinite(ylo)) bound2 = std::min(bound2, (p.y - ylo) * (p.y - ylo));
      if (std::isfinite(yhi)) bound2 = std::min(bound2, (yhi - p.y) * (yhi - p.y));
      if (kth <= bound2) break;
    }
    if (!any && best.size() >= k) break;
    ++ring;
  }
  std::sort(best.begin(), best.end());
  for (size_t i = 0; i < std::min(best.size(), k); ++i) {
    stats.results.push_back(best[i].second);
  }
  return stats;
}

size_t LisaIndex::StructureBytes() const {
  size_t b = x_bounds_.size() * sizeof(double);
  for (const auto& yb : y_bounds_) b += yb.size() * sizeof(double);
  b += total_ * (sizeof(Point) + sizeof(uint64_t));
  return b;
}

}  // namespace spatial
}  // namespace ml4db
