// R-tree with pluggable insertion policies — the classical spatial index
// the paper's ML-enhanced methods build on (§3.2). The ChooseSubtree and
// SplitNode heuristics are virtual, which is exactly the surface RLR-tree
// (reinforcement-learned) and RW-tree (workload-aware) replace; PLATON
// replaces the bulk-loading partitioner; AI+R wraps the search path.
//
// Query methods report node accesses — the I/O-proxy metric the R-tree
// literature (and our benchmarks) compare on.

#ifndef ML4DB_SPATIAL_RTREE_H_
#define ML4DB_SPATIAL_RTREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "spatial/geometry.h"

namespace ml4db {
namespace spatial {

/// A data entry: rectangle (or point) plus payload id.
struct SpatialEntry {
  Rect rect;
  uint64_t id = 0;
};

/// Result of a spatial query plus the access cost incurred.
struct QueryStats {
  std::vector<uint64_t> results;
  size_t nodes_accessed = 0;
};

class RTree;

/// Insertion heuristics. Implementations must be deterministic given their
/// internal state; the tree calls them under its own locks-free usage.
class RTreePolicy {
 public:
  virtual ~RTreePolicy() = default;

  /// Context handed to ChooseSubtree: candidate child MBRs and fills.
  struct ChildInfo {
    Rect mbr;
    size_t num_entries;
  };

  /// Picks which child of an internal node receives `rect`.
  /// Default: minimum area enlargement, ties by smaller area (Guttman).
  virtual size_t ChooseSubtree(const std::vector<ChildInfo>& children,
                               const Rect& rect);

  /// Splits an overflowing entry set into two groups (returning the index
  /// set of the first group; the rest form the second). Both groups must be
  /// non-empty and respect a minimum fill of `min_fill` entries.
  /// Default: Guttman's quadratic split.
  virtual std::vector<size_t> SplitNode(const std::vector<Rect>& rects,
                                        size_t min_fill);
};

/// R-tree over rectangles with range and KNN queries.
class RTree {
 public:
  struct Options {
    size_t max_entries = 32;  ///< node capacity
    size_t min_entries = 8;   ///< min fill after split
  };

  RTree();  // default options + classical policy
  explicit RTree(Options options, std::shared_ptr<RTreePolicy> policy = nullptr);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts one entry.
  void Insert(const SpatialEntry& entry);

  /// Sort-Tile-Recursive bulk loading (replaces current contents).
  void BulkLoadStr(std::vector<SpatialEntry> entries);

  /// Builds the tree from an explicit leaf partition (each inner vector
  /// becomes one leaf); upper levels are packed by STR over leaf MBRs.
  /// PLATON's integration point.
  void BuildFromLeafPartition(const std::vector<std::vector<SpatialEntry>>& leaves);

  /// All entry ids whose rect intersects `query`.
  QueryStats RangeQuery(const Rect& query) const;

  /// The k nearest entries (by rect min-distance) to `p`. Exact best-first.
  QueryStats KnnQuery(const Point& p, size_t k) const;

  size_t size() const { return size_; }
  size_t num_nodes() const { return node_count_; }
  int Height() const;

  /// Sum over all nodes of P(random workload query intersects node MBR),
  /// approximated over a sample of query rects: the expected node accesses
  /// per query. The objective PLATON/RW-tree optimize.
  double ExpectedNodeAccesses(const std::vector<Rect>& query_sample) const;

  /// Walks all leaf MBRs (AI+R needs leaf identity).
  void VisitLeaves(
      const std::function<void(size_t leaf_id, const Rect& mbr,
                               const std::vector<SpatialEntry>& entries)>& fn)
      const;

  /// Range query restricted to the given leaf ids (AI+R's routed search);
  /// nodes_accessed counts only the visited leaves.
  QueryStats RangeQueryLeaves(const Rect& query,
                              const std::vector<size_t>& leaf_ids) const;

 private:
  struct Node;

  Node* ChooseLeaf(const Rect& rect);
  void SplitAndPropagate(Node* node);
  void AdjustUpward(Node* node);
  Rect NodeMbr(const Node* node) const;

  Options options_;
  std::shared_ptr<RTreePolicy> policy_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t node_count_ = 0;
  mutable std::vector<const Node*> leaf_cache_;  // rebuilt lazily
  mutable bool leaf_cache_valid_ = false;
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_RTREE_H_
