#include "spatial/platon.h"

#include <algorithm>
#include <cmath>

#include "ml/mcts.h"

namespace ml4db {
namespace spatial {

namespace {

constexpr int kNumCutActions = 6;  // {x, y} × {0.25, 0.5, 0.75}

double CutFraction(int action) {
  static const double kFractions[3] = {0.25, 0.5, 0.75};
  return kFractions[action % 3];
}
int CutAxis(int action) { return action / 3; }

double CenterCoord(const SpatialEntry& e, int axis) {
  const Point c = e.rect.Center();
  return axis == 0 ? c.x : c.y;
}

Rect MbrOf(const std::vector<SpatialEntry>& entries,
           const std::vector<int>& idx) {
  Rect mbr = Rect::Empty();
  for (int i : idx) mbr = Union(mbr, entries[i].rect);
  return mbr;
}

/// MCTS environment over a sampled block: states are partitions of the
/// sample; actions cut the largest block; reward is the fraction of
/// (query, block) pairs NOT touched — higher is better packing.
struct PartitionEnv {
  const std::vector<SpatialEntry>* sample;
  const std::vector<Rect>* queries;
  size_t min_block;
  size_t max_blocks;

  struct State {
    std::vector<std::vector<int>> blocks;
  };

  std::vector<int> Actions(const State& s) const {
    if (s.blocks.size() >= max_blocks) return {};
    size_t largest = 0;
    for (const auto& b : s.blocks) largest = std::max(largest, b.size());
    if (largest <= min_block) return {};
    std::vector<int> acts(kNumCutActions);
    for (int a = 0; a < kNumCutActions; ++a) acts[a] = a;
    return acts;
  }

  State Apply(const State& s, int action) const {
    State next = s;
    // Find the largest block.
    size_t target = 0;
    for (size_t i = 1; i < next.blocks.size(); ++i) {
      if (next.blocks[i].size() > next.blocks[target].size()) target = i;
    }
    std::vector<int> block = std::move(next.blocks[target]);
    const int axis = CutAxis(action);
    const size_t cut_pos = std::max<size_t>(
        1, std::min(block.size() - 1,
                    static_cast<size_t>(CutFraction(action) *
                                        static_cast<double>(block.size()))));
    std::nth_element(block.begin(), block.begin() + cut_pos, block.end(),
                     [&](int a, int b) {
                       return CenterCoord((*sample)[a], axis) <
                              CenterCoord((*sample)[b], axis);
                     });
    std::vector<int> left(block.begin(), block.begin() + cut_pos);
    std::vector<int> right(block.begin() + cut_pos, block.end());
    next.blocks[target] = std::move(left);
    next.blocks.push_back(std::move(right));
    return next;
  }

  /// Default completion policy for rollouts: cut the largest block along
  /// its longer axis at the median. A strong deterministic baseline keeps
  /// rollout values comparable across first actions (random completions
  /// drown the signal in variance).
  int DefaultAction(const State& s) const {
    size_t target = 0;
    for (size_t i = 1; i < s.blocks.size(); ++i) {
      if (s.blocks[i].size() > s.blocks[target].size()) target = i;
    }
    const Rect mbr = MbrOf(*sample, s.blocks[target]);
    const int axis = mbr.Width() >= mbr.Height() ? 0 : 1;
    return axis * 3 + 1;  // median fraction
  }

  double Rollout(const State& s, Rng& rng) const {
    (void)rng;
    State cur = s;
    int guard = 0;
    while (guard++ < 256) {
      const auto acts = Actions(cur);
      if (acts.empty()) break;
      cur = Apply(cur, DefaultAction(cur));
    }
    // Cost: expected blocks touched per query (NOT normalized by block
    // count — that would reward fragmentation), scaled by the terminal
    // block budget so the reward lands in [0, 1].
    if (cur.blocks.empty() || queries->empty()) return 0.0;
    double touched = 0.0;
    for (const auto& b : cur.blocks) {
      const Rect mbr = MbrOf(*sample, b);
      for (const auto& q : *queries) {
        if (q.Intersects(mbr)) touched += 1.0;
      }
    }
    const double per_query = touched / static_cast<double>(queries->size());
    return 1.0 - per_query / static_cast<double>(max_blocks);
  }
};

size_t AlignCut(size_t cut_pos, size_t block_size, size_t leaf_capacity);

/// Greedy cut for mid-size blocks: evaluate all six cuts by workload hits
/// of the two halves' MBRs plus a fragmentation penalty — unbalanced cuts
/// create extra partially-filled leaves, each a potential access.
int GreedyCut(const std::vector<SpatialEntry>& entries,
              std::vector<int>& block, const std::vector<Rect>& queries,
              size_t leaf_capacity) {
  int best_action = 1;  // x/median default
  double best_cost = std::numeric_limits<double>::infinity();
  const double min_leaves = std::ceil(static_cast<double>(block.size()) /
                                      static_cast<double>(leaf_capacity));
  for (int a = 0; a < kNumCutActions; ++a) {
    const int axis = CutAxis(a);
    const size_t raw = std::max<size_t>(
        1, std::min(block.size() - 1,
                    static_cast<size_t>(CutFraction(a) *
                                        static_cast<double>(block.size()))));
    const size_t cut_pos = AlignCut(raw, block.size(), leaf_capacity);
    std::nth_element(block.begin(), block.begin() + cut_pos, block.end(),
                     [&](int x, int y) {
                       return CenterCoord(entries[x], axis) <
                              CenterCoord(entries[y], axis);
                     });
    Rect left = Rect::Empty(), right = Rect::Empty();
    for (size_t i = 0; i < cut_pos; ++i) {
      left = Union(left, entries[block[i]].rect);
    }
    for (size_t i = cut_pos; i < block.size(); ++i) {
      right = Union(right, entries[block[i]].rect);
    }
    double hits = 0.0;
    for (const auto& q : queries) {
      if (q.Intersects(left)) hits += 1.0;
      if (q.Intersects(right)) hits += 1.0;
    }
    const double leaves =
        std::ceil(static_cast<double>(cut_pos) / leaf_capacity) +
        std::ceil(static_cast<double>(block.size() - cut_pos) / leaf_capacity);
    const double hit_rate = hits / (2.0 * std::max<size_t>(queries.size(), 1));
    double cost = hits + (leaves - min_leaves) * hit_rate *
                             static_cast<double>(queries.size());
    // Slight preference for balanced median cuts on ties.
    cost += std::abs(CutFraction(a) - 0.5) * 1e-3;
    if (cost < best_cost) {
      best_cost = cost;
      best_action = a;
    }
  }
  return best_action;
}

// Rounds a cut position to a multiple of the leaf capacity so full leaves
// survive the recursion (STR-style packing discipline; avoids the ~50%
// leaf-fill fragmentation naive fractional cuts cause).
size_t AlignCut(size_t cut_pos, size_t block_size, size_t leaf_capacity) {
  if (block_size <= 2 * leaf_capacity) return std::max<size_t>(1, cut_pos);
  const size_t aligned =
      std::llround(static_cast<double>(cut_pos) /
                   static_cast<double>(leaf_capacity)) *
      leaf_capacity;
  return std::min(std::max<size_t>(aligned, leaf_capacity),
                  block_size - leaf_capacity);
}

void ApplyCutToBlock(const std::vector<SpatialEntry>& entries,
                     std::vector<int>& block, int action,
                     size_t leaf_capacity, std::vector<int>* left,
                     std::vector<int>* right) {
  const int axis = CutAxis(action);
  const size_t raw = std::max<size_t>(
      1, std::min(block.size() - 1,
                  static_cast<size_t>(CutFraction(action) *
                                      static_cast<double>(block.size()))));
  const size_t cut_pos = AlignCut(raw, block.size(), leaf_capacity);
  std::nth_element(block.begin(), block.begin() + cut_pos, block.end(),
                   [&](int a, int b) {
                     return CenterCoord(entries[a], axis) <
                            CenterCoord(entries[b], axis);
                   });
  left->assign(block.begin(), block.begin() + cut_pos);
  right->assign(block.begin() + cut_pos, block.end());
}

// Terminal packing of a small block: mini-STR tiling (slice along one
// axis, chunk each slice along the other) in whichever orientation the
// workload sample finds cheaper. Single-axis chunking would produce thin
// strip leaves with terrible aspect ratios.
void ChunkBlock(const std::vector<SpatialEntry>& entries,
                std::vector<int>& block, const std::vector<Rect>& queries,
                size_t leaf_capacity,
                std::vector<std::vector<SpatialEntry>>* leaves) {
  const size_t num_leaves =
      (block.size() + leaf_capacity - 1) / leaf_capacity;
  const size_t num_slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t per_slice =
      (block.size() + num_slices - 1) / num_slices;

  auto tile = [&](int primary_axis, std::vector<std::vector<int>>* out) {
    const int secondary_axis = 1 - primary_axis;
    std::sort(block.begin(), block.end(), [&](int a, int b) {
      return CenterCoord(entries[a], primary_axis) <
             CenterCoord(entries[b], primary_axis);
    });
    for (size_t s = 0; s * per_slice < block.size(); ++s) {
      const size_t lo = s * per_slice;
      const size_t hi = std::min(block.size(), lo + per_slice);
      std::sort(block.begin() + lo, block.begin() + hi, [&](int a, int b) {
        return CenterCoord(entries[a], secondary_axis) <
               CenterCoord(entries[b], secondary_axis);
      });
      for (size_t i = lo; i < hi; i += leaf_capacity) {
        const size_t end = std::min(hi, i + leaf_capacity);
        out->emplace_back(block.begin() + i, block.begin() + end);
      }
    }
  };
  auto cost_of = [&](const std::vector<std::vector<int>>& tiles) {
    double cost = 0;
    for (const auto& t : tiles) {
      const Rect mbr = MbrOf(entries, t);
      for (const auto& q : queries) {
        if (q.Intersects(mbr)) cost += 1.0;
      }
      cost += 0.01;  // slight preference for fewer leaves
    }
    return cost;
  };

  // Strip tilings: single-axis chunking produces elongated leaves, which
  // beat square tiles when the workload's query boxes are themselves
  // elongated (leaf shape should match query shape).
  auto strips = [&](int axis, std::vector<std::vector<int>>* out) {
    std::sort(block.begin(), block.end(), [&](int a, int b) {
      return CenterCoord(entries[a], axis) < CenterCoord(entries[b], axis);
    });
    for (size_t i = 0; i < block.size(); i += leaf_capacity) {
      const size_t end = std::min(block.size(), i + leaf_capacity);
      out->emplace_back(block.begin() + i, block.begin() + end);
    }
  };

  std::vector<std::vector<std::vector<int>>> candidates(4);
  tile(0, &candidates[0]);
  tile(1, &candidates[1]);
  strips(0, &candidates[2]);
  strips(1, &candidates[3]);
  size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double c = cost_of(candidates[i]);
    if (c < best_cost) {
      best_cost = c;
      best = i;
    }
  }
  const auto& chosen = candidates[best];
  for (const auto& t : chosen) {
    std::vector<SpatialEntry> leaf;
    leaf.reserve(t.size());
    for (int i : t) leaf.push_back(entries[i]);
    leaves->push_back(std::move(leaf));
  }
}

}  // namespace

std::vector<std::vector<SpatialEntry>> PlatonPartition(
    const std::vector<SpatialEntry>& entries,
    const std::vector<Rect>& workload_queries, const PlatonOptions& options) {
  std::vector<std::vector<SpatialEntry>> leaves;
  if (entries.empty()) return leaves;
  Rng rng(options.seed);

  // Query sample for value estimation.
  std::vector<Rect> qsample = workload_queries;
  if (qsample.size() > options.query_sample) {
    rng.Shuffle(qsample);
    qsample.resize(options.query_sample);
  }
  if (qsample.empty()) qsample.push_back({0, 0, 1, 1});

  std::vector<int> all(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) all[i] = static_cast<int>(i);

  // Worklist of blocks.
  std::vector<std::vector<int>> work = {std::move(all)};
  while (!work.empty()) {
    std::vector<int> block = std::move(work.back());
    work.pop_back();
    if (block.size() <= options.leaf_capacity) {
      std::vector<SpatialEntry> leaf;
      leaf.reserve(block.size());
      for (int i : block) leaf.push_back(entries[i]);
      leaves.push_back(std::move(leaf));
      continue;
    }
    if (block.size() <= 4 * options.leaf_capacity) {
      // Terminal chunking keeps leaves fully packed.
      ChunkBlock(entries, block, qsample, options.leaf_capacity, &leaves);
      continue;
    }
    int action;
    if (block.size() > options.mcts_min_block) {
      // Sample the block for MCTS value estimation.
      std::vector<int> sample_idx = block;
      if (sample_idx.size() > options.value_sample) {
        rng.Shuffle(sample_idx);
        sample_idx.resize(options.value_sample);
      }
      std::vector<SpatialEntry> sample;
      sample.reserve(sample_idx.size());
      for (int i : sample_idx) sample.push_back(entries[i]);

      PartitionEnv env;
      env.sample = &sample;
      env.queries = &qsample;
      env.min_block = std::max<size_t>(8, sample.size() / 64);
      env.max_blocks = 64;
      ml::MctsOptions mopts;
      mopts.iterations = static_cast<int>(options.mcts_iterations);
      ml::Mcts<PartitionEnv> mcts(&env, mopts, rng.NextUint64());
      PartitionEnv::State root;
      std::vector<int> sample_block(sample.size());
      for (size_t i = 0; i < sample.size(); ++i) {
        sample_block[i] = static_cast<int>(i);
      }
      root.blocks.push_back(std::move(sample_block));
      action = mcts.Search(root);
    } else {
      action = GreedyCut(entries, block, qsample, options.leaf_capacity);
    }
    std::vector<int> left, right;
    ApplyCutToBlock(entries, block, action, options.leaf_capacity, &left,
                    &right);
    work.push_back(std::move(left));
    work.push_back(std::move(right));
  }
  return leaves;
}

RTree PlatonPack(const std::vector<SpatialEntry>& entries,
                 const std::vector<Rect>& workload_queries,
                 RTree::Options tree_options, const PlatonOptions& options) {
  RTree learned(tree_options);
  learned.BuildFromLeafPartition(
      PlatonPartition(entries, workload_queries, options));
  // The partition policy's action space includes the space-filling tiling
  // as a whole-tree alternative: build the STR packing too and keep
  // whichever the workload sample prices cheaper. This is the safety net
  // that makes the learned bulk-loader never worse than the classical one
  // on the instance it optimized for.
  RTree str(tree_options);
  str.BulkLoadStr(entries);
  if (workload_queries.empty()) return learned;
  const double learned_cost = learned.ExpectedNodeAccesses(workload_queries);
  const double str_cost = str.ExpectedNodeAccesses(workload_queries);
  return learned_cost <= str_cost ? std::move(learned) : std::move(str);
}

}  // namespace spatial
}  // namespace ml4db
