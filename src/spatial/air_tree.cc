#include "spatial/air_tree.h"

#include <algorithm>
#include <cmath>

namespace ml4db {
namespace spatial {

AirTree::AirTree(const RTree* tree, Options options)
    : tree_(tree), options_(options) {
  ML4DB_CHECK(tree != nullptr);
  tree_->VisitLeaves(
      [&](size_t, const Rect& mbr, const std::vector<SpatialEntry>&) {
        leaf_mbrs_.push_back(mbr);
      });
  // features: [bias, dx, dy, ox, oy, overlap/leaf, overlap/query].
  leaf_weights_.assign(leaf_mbrs_.size(), ml::Vec(7, 0.0));
}

ml::Vec AirTree::QueryFeatures(const Rect& q, const Rect& leaf_mbr) {
  // Scale-aware separation features (per-axis normalized center distance,
  // per-axis overlap extent) plus exact MBR-overlap fractions. The learned
  // part is predicting whether the overlap region actually holds data —
  // MBR geometry alone is what the plain R-tree already checks.
  const Point qc = q.Center();
  const Point lc = leaf_mbr.Center();
  const double half_w = (q.Width() + leaf_mbr.Width()) / 2 + 1e-9;
  const double half_h = (q.Height() + leaf_mbr.Height()) / 2 + 1e-9;
  const double dx = std::abs(qc.x - lc.x) / half_w;  // <1 iff x-overlap
  const double dy = std::abs(qc.y - lc.y) / half_h;
  const double ox = std::max(0.0, 1.0 - dx);
  const double oy = std::max(0.0, 1.0 - dy);
  const double inter = IntersectionArea(q, leaf_mbr);
  const double of_leaf = inter / (leaf_mbr.Area() + 1e-12);
  const double of_query = inter / (q.Area() + 1e-12);
  return {1.0, dx, dy, ox, oy, of_leaf, of_query};
}

void AirTree::Train(const std::vector<Rect>& training_queries) {
  ML4DB_CHECK(!training_queries.empty());
  // Self-supervised labels: which leaves actually contain results for the
  // query (per the paper, the AI-tree learns from executed workloads).
  std::vector<std::vector<uint8_t>> labels(
      training_queries.size(), std::vector<uint8_t>(leaf_mbrs_.size(), 0));
  std::vector<const std::vector<SpatialEntry>*> leaf_entries;
  std::vector<std::vector<SpatialEntry>> leaf_copies;
  tree_->VisitLeaves(
      [&](size_t, const Rect&, const std::vector<SpatialEntry>& entries) {
        leaf_copies.push_back(entries);
      });
  for (size_t qi = 0; qi < training_queries.size(); ++qi) {
    const Rect& q = training_queries[qi];
    for (size_t li = 0; li < leaf_mbrs_.size(); ++li) {
      if (!q.Intersects(leaf_mbrs_[li])) continue;
      for (const auto& e : leaf_copies[li]) {
        if (q.Intersects(e.rect)) {
          labels[qi][li] = 1;
          break;
        }
      }
    }
  }
  // Per-leaf logistic regression via SGD.
  Rng rng(options_.seed);
  std::vector<size_t> order(training_queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.train_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t qi : order) {
      const Rect& q = training_queries[qi];
      for (size_t li = 0; li < leaf_mbrs_.size(); ++li) {
        const ml::Vec f = QueryFeatures(q, leaf_mbrs_[li]);
        const double logit = ml::Dot(leaf_weights_[li], f);
        double grad;
        const bool positive = labels[qi][li] != 0;
        ml::BceWithLogitsLoss(logit, positive ? 1.0 : 0.0, &grad);
        // Weight positives: a missed leaf loses results (recall), an extra
        // predicted leaf only costs one access.
        const double w = positive ? 4.0 : 1.0;
        ml::AxpyInPlace(leaf_weights_[li], f, -options_.lr * w * grad);
      }
    }
  }
  trained_ = true;
}

std::vector<size_t> AirTree::PredictLeaves(const Rect& query) const {
  std::vector<size_t> out;
  for (size_t li = 0; li < leaf_mbrs_.size(); ++li) {
    const double logit = ml::Dot(leaf_weights_[li], QueryFeatures(query, leaf_mbrs_[li]));
    const double p = 1.0 / (1.0 + std::exp(-logit));
    if (p >= options_.route_threshold) out.push_back(li);
  }
  return out;
}

QueryStats AirTree::AiRangeQuery(const Rect& query) const {
  return tree_->RangeQueryLeaves(query, PredictLeaves(query));
}

QueryStats AirTree::RangeQuery(const Rect& query) const {
  if (!trained_) return tree_->RangeQuery(query);
  const std::vector<size_t> predicted = PredictLeaves(query);
  if (predicted.size() >= options_.high_overlap_leaves) {
    // High-overlap query: classifier routing skips internal traversal.
    return tree_->RangeQueryLeaves(query, predicted);
  }
  return tree_->RangeQuery(query);
}

}  // namespace spatial
}  // namespace ml4db
