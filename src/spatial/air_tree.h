// AI+R tree (Al-Mamun et al. 2022; paper §3.2, ML-enhanced search): an
// R-tree augmented with a learned "AI-tree" that turns range search into
// multi-label classification over leaves. High-overlap queries — the ones
// that would touch many internal nodes — are routed to the classifier,
// which predicts the candidate leaf set directly and skips the internal
// traversal; low-overlap queries use the classic R-tree. The classifier
// can miss leaves (a tunable recall/speed trade-off), which the benchmark
// reports as recall alongside node accesses.

#ifndef ML4DB_SPATIAL_AIR_TREE_H_
#define ML4DB_SPATIAL_AIR_TREE_H_

#include <memory>

#include "ml/nn.h"
#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// R-tree + learned leaf-routing classifier.
class AirTree {
 public:
  struct Options {
    double route_threshold = 0.3;   ///< classifier score to include a leaf
    size_t high_overlap_leaves = 4; ///< predicted-leaf count that triggers
                                    ///< AI routing (else fall back to R-tree)
    int train_epochs = 60;
    double lr = 0.05;
    uint64_t seed = 31;
  };

  /// Wraps an already-built R-tree (not owned).
  AirTree(const RTree* tree, Options options);

  /// Trains the per-leaf classifiers on a historical query workload
  /// (self-supervised: labels come from running the queries on the R-tree).
  void Train(const std::vector<Rect>& training_queries);

  /// Routed range query: AI-tree path for predicted-high-overlap queries,
  /// classic R-tree otherwise.
  QueryStats RangeQuery(const Rect& query) const;

  /// Forces the AI-tree path (diagnostics).
  QueryStats AiRangeQuery(const Rect& query) const;

  /// Fraction of queries routed to the AI-tree in the last batch counted
  /// externally; exposed: predicted leaf ids for a query.
  std::vector<size_t> PredictLeaves(const Rect& query) const;

  size_t num_leaves() const { return leaf_mbrs_.size(); }
  bool trained() const { return trained_; }

 private:
  static ml::Vec QueryFeatures(const Rect& q, const Rect& leaf_mbr);

  const RTree* tree_;
  Options options_;
  bool trained_ = false;
  std::vector<Rect> leaf_mbrs_;
  // One logistic scorer per leaf: w · features(query, leaf).
  std::vector<ml::Vec> leaf_weights_;
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_AIR_TREE_H_
