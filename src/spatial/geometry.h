// 2-d geometry primitives shared by every spatial index. Header-only so the
// workload generators can use the types without linking the spatial lib.

#ifndef ML4DB_SPATIAL_GEOMETRY_H_
#define ML4DB_SPATIAL_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ml4db {
namespace spatial {

/// A 2-d point (unit-square domain by convention).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Axis-aligned rectangle; degenerate rectangles represent points.
struct Rect {
  double xlo = 0.0, ylo = 0.0, xhi = 0.0, yhi = 0.0;

  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  /// The "empty" rectangle: Union identity.
  static Rect Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return {inf, inf, -inf, -inf};
  }

  double Width() const { return std::max(0.0, xhi - xlo); }
  double Height() const { return std::max(0.0, yhi - ylo); }
  double Area() const { return Width() * Height(); }
  double Margin() const { return 2.0 * (Width() + Height()); }
  Point Center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }

  bool Intersects(const Rect& o) const {
    return xlo <= o.xhi && o.xlo <= xhi && ylo <= o.yhi && o.ylo <= yhi;
  }
  bool Contains(const Rect& o) const {
    return xlo <= o.xlo && o.xhi <= xhi && ylo <= o.ylo && o.yhi <= yhi;
  }
  bool ContainsPoint(const Point& p) const {
    return xlo <= p.x && p.x <= xhi && ylo <= p.y && p.y <= yhi;
  }
};

/// Smallest rectangle covering both inputs.
inline Rect Union(const Rect& a, const Rect& b) {
  return {std::min(a.xlo, b.xlo), std::min(a.ylo, b.ylo),
          std::max(a.xhi, b.xhi), std::max(a.yhi, b.yhi)};
}

/// Area of the intersection (0 when disjoint).
inline double IntersectionArea(const Rect& a, const Rect& b) {
  const double w = std::min(a.xhi, b.xhi) - std::max(a.xlo, b.xlo);
  const double h = std::min(a.yhi, b.yhi) - std::max(a.ylo, b.ylo);
  return w > 0 && h > 0 ? w * h : 0.0;
}

/// Area increase of `mbr` if it absorbed `r`.
inline double Enlargement(const Rect& mbr, const Rect& r) {
  return Union(mbr, r).Area() - mbr.Area();
}

/// Squared minimum distance from a point to a rectangle (0 when inside).
inline double MinDist2(const Point& p, const Rect& r) {
  const double dx = p.x < r.xlo ? r.xlo - p.x : (p.x > r.xhi ? p.x - r.xhi : 0.0);
  const double dy = p.y < r.ylo ? r.ylo - p.y : (p.y > r.yhi ? p.y - r.yhi : 0.0);
  return dx * dx + dy * dy;
}

inline double Dist2(const Point& a, const Point& b) {
  return (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
}

/// Morton (Z-order) code of a point in the unit square at `bits` bits per
/// dimension (bits <= 31).
inline uint64_t ZOrder(const Point& p, int bits = 20) {
  const uint64_t scale = (uint64_t{1} << bits) - 1;
  uint64_t xi = static_cast<uint64_t>(
      std::min(std::max(p.x, 0.0), 1.0) * static_cast<double>(scale));
  uint64_t yi = static_cast<uint64_t>(
      std::min(std::max(p.y, 0.0), 1.0) * static_cast<double>(scale));
  uint64_t z = 0;
  for (int b = 0; b < bits; ++b) {
    z |= ((xi >> b) & 1ULL) << (2 * b);
    z |= ((yi >> b) & 1ULL) << (2 * b + 1);
  }
  return z;
}

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_GEOMETRY_H_
