#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ml4db {
namespace spatial {

// ----------------------------- default policy ------------------------------

size_t RTreePolicy::ChooseSubtree(const std::vector<ChildInfo>& children,
                                  const Rect& rect) {
  ML4DB_DCHECK(!children.empty());
  size_t best = 0;
  double best_enl = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < children.size(); ++i) {
    const double enl = Enlargement(children[i].mbr, rect);
    const double area = children[i].mbr.Area();
    if (enl < best_enl || (enl == best_enl && area < best_area)) {
      best = i;
      best_enl = enl;
      best_area = area;
    }
  }
  return best;
}

std::vector<size_t> RTreePolicy::SplitNode(const std::vector<Rect>& rects,
                                           size_t min_fill) {
  const size_t n = rects.size();
  ML4DB_DCHECK(n >= 2 * min_fill);
  // Quadratic pick-seeds: the pair wasting the most area.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          Union(rects[i], rects[j]).Area() - rects[i].Area() - rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<size_t> group_a = {seed_a};
  std::vector<size_t> group_b = {seed_b};
  Rect mbr_a = rects[seed_a];
  Rect mbr_b = rects[seed_b];
  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign to honor minimum fill.
    if (group_a.size() + remaining == min_fill ||
        group_b.size() + remaining == min_fill) {
      auto& group = group_a.size() + remaining == min_fill ? group_a : group_b;
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group.push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    // Pick-next: entry with max preference difference.
    size_t pick = n;
    double best_diff = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = Enlargement(mbr_a, rects[i]);
      const double db = Enlargement(mbr_b, rects[i]);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const double da = Enlargement(mbr_a, rects[pick]);
    const double db = Enlargement(mbr_b, rects[pick]);
    const bool to_a = da < db || (da == db && group_a.size() < group_b.size());
    if (to_a) {
      group_a.push_back(pick);
      mbr_a = Union(mbr_a, rects[pick]);
    } else {
      group_b.push_back(pick);
      mbr_b = Union(mbr_b, rects[pick]);
    }
    assigned[pick] = true;
    --remaining;
  }
  return group_a;
}

// --------------------------------- node ------------------------------------

struct RTree::Node {
  bool leaf = true;
  Rect mbr = Rect::Empty();
  Node* parent = nullptr;
  std::vector<SpatialEntry> entries;               // leaf
  std::vector<std::unique_ptr<Node>> children;     // inner
};

RTree::RTree() : RTree(Options{}) {}

RTree::RTree(Options options, std::shared_ptr<RTreePolicy> policy)
    : options_(options),
      policy_(policy ? std::move(policy) : std::make_shared<RTreePolicy>()) {
  ML4DB_CHECK(options_.min_entries >= 2);
  ML4DB_CHECK(options_.max_entries >= 2 * options_.min_entries);
  root_ = std::make_unique<Node>();
  node_count_ = 1;
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

Rect RTree::NodeMbr(const Node* node) const {
  Rect mbr = Rect::Empty();
  if (node->leaf) {
    for (const auto& e : node->entries) mbr = Union(mbr, e.rect);
  } else {
    for (const auto& c : node->children) mbr = Union(mbr, c->mbr);
  }
  return mbr;
}

RTree::Node* RTree::ChooseLeaf(const Rect& rect) {
  Node* node = root_.get();
  while (!node->leaf) {
    std::vector<RTreePolicy::ChildInfo> infos;
    infos.reserve(node->children.size());
    for (const auto& c : node->children) {
      infos.push_back({c->mbr, c->leaf ? c->entries.size() : c->children.size()});
    }
    const size_t pick = policy_->ChooseSubtree(infos, rect);
    ML4DB_DCHECK(pick < node->children.size());
    node = node->children[pick].get();
  }
  return node;
}

void RTree::Insert(const SpatialEntry& entry) {
  leaf_cache_valid_ = false;
  Node* leaf = ChooseLeaf(entry.rect);
  leaf->entries.push_back(entry);
  leaf->mbr = Union(leaf->mbr, entry.rect);
  ++size_;
  if (leaf->entries.size() > options_.max_entries) {
    SplitAndPropagate(leaf);
  } else {
    AdjustUpward(leaf->parent);
  }
}

void RTree::SplitAndPropagate(Node* node) {
  while (node != nullptr) {
    const size_t count =
        node->leaf ? node->entries.size() : node->children.size();
    if (count <= options_.max_entries) {
      AdjustUpward(node);
      return;
    }
    // Collect rects of the overflowing node's members.
    std::vector<Rect> rects;
    rects.reserve(count);
    if (node->leaf) {
      for (const auto& e : node->entries) rects.push_back(e.rect);
    } else {
      for (const auto& c : node->children) rects.push_back(c->mbr);
    }
    std::vector<size_t> group_a =
        policy_->SplitNode(rects, options_.min_entries);
    std::vector<bool> in_a(count, false);
    for (size_t i : group_a) {
      ML4DB_CHECK(i < count);
      in_a[i] = true;
    }
    // Validate the policy respected the fill constraints; fall back to the
    // classical split if not (keeps learned policies safe).
    const size_t a_count = group_a.size();
    if (a_count < options_.min_entries ||
        count - a_count < options_.min_entries) {
      RTreePolicy fallback;
      group_a = fallback.SplitNode(rects, options_.min_entries);
      in_a.assign(count, false);
      for (size_t i : group_a) in_a[i] = true;
    }

    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;
    ++node_count_;
    if (node->leaf) {
      std::vector<SpatialEntry> keep;
      for (size_t i = 0; i < count; ++i) {
        if (in_a[i]) {
          keep.push_back(node->entries[i]);
        } else {
          sibling->entries.push_back(node->entries[i]);
        }
      }
      node->entries = std::move(keep);
    } else {
      std::vector<std::unique_ptr<Node>> keep;
      for (size_t i = 0; i < count; ++i) {
        if (in_a[i]) {
          keep.push_back(std::move(node->children[i]));
        } else {
          sibling->children.push_back(std::move(node->children[i]));
        }
      }
      node->children = std::move(keep);
      for (auto& c : node->children) c->parent = node;
      for (auto& c : sibling->children) c->parent = sibling.get();
    }
    node->mbr = NodeMbr(node);
    sibling->mbr = NodeMbr(sibling.get());

    if (node->parent == nullptr) {
      // Grow a new root.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      ++node_count_;
      sibling->parent = new_root.get();
      Node* old = root_.release();
      old->parent = new_root.get();
      new_root->children.emplace_back(old);
      new_root->children.push_back(std::move(sibling));
      new_root->mbr = NodeMbr(new_root.get());
      root_ = std::move(new_root);
      return;
    }
    sibling->parent = node->parent;
    node->parent->children.push_back(std::move(sibling));
    node = node->parent;
  }
}

void RTree::AdjustUpward(Node* node) {
  while (node != nullptr) {
    node->mbr = NodeMbr(node);
    node = node->parent;
  }
}

void RTree::BulkLoadStr(std::vector<SpatialEntry> entries) {
  std::vector<std::vector<SpatialEntry>> leaves;
  const size_t cap = options_.max_entries;  // STR packs nodes full
  const size_t n = entries.size();
  if (n == 0) {
    BuildFromLeafPartition({});
    return;
  }
  const size_t num_leaves = (n + cap - 1) / cap;
  const size_t num_slices =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  std::sort(entries.begin(), entries.end(),
            [](const SpatialEntry& a, const SpatialEntry& b) {
              return a.rect.Center().x < b.rect.Center().x;
            });
  const size_t per_slice = (n + num_slices - 1) / num_slices;
  for (size_t s = 0; s < num_slices; ++s) {
    const size_t lo = s * per_slice;
    if (lo >= n) break;
    const size_t hi = std::min(n, lo + per_slice);
    std::sort(entries.begin() + lo, entries.begin() + hi,
              [](const SpatialEntry& a, const SpatialEntry& b) {
                return a.rect.Center().y < b.rect.Center().y;
              });
    for (size_t i = lo; i < hi; i += cap) {
      const size_t end = std::min(hi, i + cap);
      leaves.emplace_back(entries.begin() + i, entries.begin() + end);
    }
  }
  BuildFromLeafPartition(leaves);
}

void RTree::BuildFromLeafPartition(
    const std::vector<std::vector<SpatialEntry>>& leaves) {
  leaf_cache_valid_ = false;
  size_ = 0;
  node_count_ = 0;
  std::vector<std::unique_ptr<Node>> level;
  for (const auto& part : leaves) {
    if (part.empty()) continue;
    auto leaf = std::make_unique<Node>();
    leaf->leaf = true;
    leaf->entries = part;
    leaf->mbr = NodeMbr(leaf.get());
    size_ += part.size();
    ++node_count_;
    level.push_back(std::move(leaf));
  }
  if (level.empty()) {
    root_ = std::make_unique<Node>();
    node_count_ = 1;
    return;
  }
  // Pack upper levels by STR over child MBR centers.
  while (level.size() > 1) {
    const size_t cap = options_.max_entries;
    const size_t num_parents = (level.size() + cap - 1) / cap;
    const size_t num_slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    std::sort(level.begin(), level.end(),
              [](const auto& a, const auto& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    std::vector<std::unique_ptr<Node>> parents;
    const size_t per_slice = (level.size() + num_slices - 1) / num_slices;
    for (size_t s = 0; s < num_slices; ++s) {
      const size_t lo = s * per_slice;
      if (lo >= level.size()) break;
      const size_t hi = std::min(level.size(), lo + per_slice);
      std::sort(level.begin() + lo, level.begin() + hi,
                [](const auto& a, const auto& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
      for (size_t i = lo; i < hi; i += cap) {
        const size_t end = std::min(hi, i + cap);
        auto parent = std::make_unique<Node>();
        parent->leaf = false;
        ++node_count_;
        for (size_t j = i; j < end; ++j) {
          level[j]->parent = parent.get();
          parent->children.push_back(std::move(level[j]));
        }
        parent->mbr = NodeMbr(parent.get());
        parents.push_back(std::move(parent));
      }
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
  root_->parent = nullptr;
}

QueryStats RTree::RangeQuery(const Rect& query) const {
  QueryStats stats;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++stats.nodes_accessed;
    if (node->leaf) {
      for (const auto& e : node->entries) {
        if (query.Intersects(e.rect)) stats.results.push_back(e.id);
      }
    } else {
      for (const auto& c : node->children) {
        if (query.Intersects(c->mbr)) stack.push_back(c.get());
      }
    }
  }
  return stats;
}

QueryStats RTree::KnnQuery(const Point& p, size_t k) const {
  QueryStats stats;
  if (k == 0 || size_ == 0) return stats;
  // Best-first search over nodes and entries.
  struct Item {
    double dist2;
    const Node* node;     // null for entry items
    uint64_t id;
    bool operator>(const Item& o) const { return dist2 > o.dist2; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  pq.push({MinDist2(p, root_->mbr), root_.get(), 0});
  while (!pq.empty() && stats.results.size() < k) {
    const Item item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      stats.results.push_back(item.id);
      continue;
    }
    ++stats.nodes_accessed;
    if (item.node->leaf) {
      for (const auto& e : item.node->entries) {
        pq.push({MinDist2(p, e.rect), nullptr, e.id});
      }
    } else {
      for (const auto& c : item.node->children) {
        pq.push({MinDist2(p, c->mbr), c.get(), 0});
      }
    }
  }
  return stats;
}

int RTree::Height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

double RTree::ExpectedNodeAccesses(const std::vector<Rect>& query_sample) const {
  if (query_sample.empty()) return 0.0;
  double total = 0.0;
  std::vector<const Node*> stack = {root_.get()};
  std::vector<const Node*> all;
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    all.push_back(n);
    if (!n->leaf) {
      for (const auto& c : n->children) stack.push_back(c.get());
    }
  }
  for (const Rect& q : query_sample) {
    for (const Node* n : all) {
      if (q.Intersects(n->mbr)) total += 1.0;
    }
  }
  return total / static_cast<double>(query_sample.size());
}

void RTree::VisitLeaves(
    const std::function<void(size_t, const Rect&,
                             const std::vector<SpatialEntry>&)>& fn) const {
  if (!leaf_cache_valid_) {
    leaf_cache_.clear();
    std::vector<const Node*> stack = {root_.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (n->leaf) {
        leaf_cache_.push_back(n);
      } else {
        for (const auto& c : n->children) stack.push_back(c.get());
      }
    }
    // Stable order: sort by MBR lower corner for reproducibility.
    std::sort(leaf_cache_.begin(), leaf_cache_.end(),
              [](const Node* a, const Node* b) {
                if (a->mbr.xlo != b->mbr.xlo) return a->mbr.xlo < b->mbr.xlo;
                return a->mbr.ylo < b->mbr.ylo;
              });
    leaf_cache_valid_ = true;
  }
  for (size_t i = 0; i < leaf_cache_.size(); ++i) {
    fn(i, leaf_cache_[i]->mbr, leaf_cache_[i]->entries);
  }
}

QueryStats RTree::RangeQueryLeaves(const Rect& query,
                                   const std::vector<size_t>& leaf_ids) const {
  QueryStats stats;
  // Ensure the cache exists.
  if (!leaf_cache_valid_) {
    VisitLeaves([](size_t, const Rect&, const std::vector<SpatialEntry>&) {});
  }
  for (size_t id : leaf_ids) {
    if (id >= leaf_cache_.size()) continue;
    ++stats.nodes_accessed;
    for (const auto& e : leaf_cache_[id]->entries) {
      if (query.Intersects(e.rect)) stats.results.push_back(e.id);
    }
  }
  return stats;
}

}  // namespace spatial
}  // namespace ml4db
