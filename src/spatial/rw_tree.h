// RW-tree (Dong et al. 2022; paper §3.2, ML-enhanced insertion): a
// workload-aware R-tree. ChooseSubtree and SplitNode are optimized against
// a learned cost model of the *historical query workload*: the cost of an
// MBR is the (sample-estimated) probability that a workload query
// intersects it, so insertion decisions minimize expected query I/O for
// the workload actually observed rather than generic geometric proxies.

#ifndef ML4DB_SPATIAL_RW_TREE_H_
#define ML4DB_SPATIAL_RW_TREE_H_

#include <memory>

#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// Workload-aware insertion policy driven by a query sample.
class RwPolicy : public RTreePolicy {
 public:
  /// @param query_sample historical workload sample (the learned cost
  ///        model's training data); kept by value.
  explicit RwPolicy(std::vector<Rect> query_sample)
      : queries_(std::move(query_sample)) {
    ML4DB_CHECK(!queries_.empty());
  }

  /// Expected number of sample queries hitting `r` (the cost model).
  double HitCount(const Rect& r) const {
    double hits = 0.0;
    for (const auto& q : queries_) {
      if (q.Intersects(r)) hits += 1.0;
    }
    return hits;
  }

  size_t ChooseSubtree(const std::vector<ChildInfo>& children,
                       const Rect& rect) override;
  std::vector<size_t> SplitNode(const std::vector<Rect>& rects,
                                size_t min_fill) override;

  /// Replaces the workload sample (adaptation to workload shift).
  void UpdateWorkload(std::vector<Rect> query_sample) {
    ML4DB_CHECK(!query_sample.empty());
    queries_ = std::move(query_sample);
  }

 private:
  std::vector<Rect> queries_;
};

/// An RTree wired with an RwPolicy.
class RwTree {
 public:
  RwTree(RTree::Options tree_options, std::vector<Rect> query_sample)
      : policy_(std::make_shared<RwPolicy>(std::move(query_sample))),
        tree_(tree_options, policy_) {}

  void Insert(const SpatialEntry& e) { tree_.Insert(e); }
  QueryStats RangeQuery(const Rect& q) const { return tree_.RangeQuery(q); }
  QueryStats KnnQuery(const Point& p, size_t k) const {
    return tree_.KnnQuery(p, k);
  }
  const RTree& tree() const { return tree_; }
  RwPolicy& policy() { return *policy_; }

 private:
  std::shared_ptr<RwPolicy> policy_;
  RTree tree_;
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_RW_TREE_H_
