#include "spatial/rlr_tree.h"

#include <algorithm>
#include <numeric>

namespace ml4db {
namespace spatial {

namespace {

ml::QLearnOptions MakeQOpts(const RlrPolicy::Options& o) {
  ml::QLearnOptions q;
  q.learning_rate = o.lr;
  q.gamma = 0.0;  // contextual bandit: immediate geometric reward
  q.epsilon = o.epsilon;
  q.epsilon_decay = o.epsilon_decay;
  q.min_epsilon = 0.02;
  return q;
}

}  // namespace

RlrPolicy::RlrPolicy(Options options, uint64_t seed)
    // One shared scorer per decision type (action id 0): candidates are
    // distinguished purely by their feature vectors, as in the RLR-tree's
    // shared Q-network — per-slot weights would starve the rarely-picked
    // slots of training samples.
    : options_(options),
      choose_q_(1, kChooseFeatures, MakeQOpts(options), seed),
      split_q_(1, kSplitFeatures, MakeQOpts(options), seed ^ 0x9e37ULL) {}

size_t RlrPolicy::ChooseSubtree(const std::vector<ChildInfo>& children,
                                const Rect& rect) {
  const size_t n = children.size();
  if (n == 1) return 0;
  // Rank children by enlargement; consider the top_k.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return Enlargement(children[a].mbr, rect) <
           Enlargement(children[b].mbr, rect);
  });
  const size_t k = std::min(options_.top_k, n);

  // Features per candidate (normalized within the candidate set).
  std::vector<ml::Vec> feats(k);
  std::vector<size_t> actions(k);
  double max_area = 1e-12, max_fill = 1.0;
  for (size_t i = 0; i < k; ++i) {
    max_area = std::max(max_area, children[order[i]].mbr.Area());
    max_fill = std::max(max_fill,
                        static_cast<double>(children[order[i]].num_entries));
  }
  for (size_t i = 0; i < k; ++i) {
    const ChildInfo& c = children[order[i]];
    const Rect enlarged = Union(c.mbr, rect);
    // Overlap increase with the other candidates after enlargement.
    double overlap_delta = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      overlap_delta += IntersectionArea(enlarged, children[order[j]].mbr) -
                       IntersectionArea(c.mbr, children[order[j]].mbr);
    }
    feats[i] = {Enlargement(c.mbr, rect) / (max_area + 1e-12),
                (enlarged.Margin() - c.mbr.Margin()),
                overlap_delta / (max_area + 1e-12),
                static_cast<double>(c.num_entries) / max_fill,
                c.mbr.Area() / (max_area + 1e-12),
                1.0};
    actions[i] = 0;  // shared scorer; candidates differ by features
  }

  (void)actions;
  size_t pick_idx;
  if (training_) {
    pick_idx = SelectCandidate(choose_q_, feats, /*explore=*/true);
    // Immediate reward: negative enlargement + weighted overlap growth +
    // a node-compactness term (without it, ties between zero-enlargement
    // candidates teach nothing and fat nodes win by default).
    const double reward =
        -(feats[pick_idx][0] + options_.overlap_weight * feats[pick_idx][2] +
          0.3 * feats[pick_idx][4]);
    choose_q_.Update(0, feats[pick_idx], reward, 0.0);
    choose_q_.EndEpisode();
    ++updates_;
  } else {
    pick_idx = SelectCandidate(choose_q_, feats, /*explore=*/false);
  }
  return order[pick_idx];
}

std::vector<size_t> RlrPolicy::SplitNode(const std::vector<Rect>& rects,
                                         size_t min_fill) {
  const size_t n = rects.size();
  // Four candidate orderings (R*-style axis choices); within each ordering,
  // split at the position minimizing group overlap.
  auto sorted_by = [&](int mode) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      switch (mode) {
        case 0: return rects[a].xlo < rects[b].xlo;
        case 1: return rects[a].xhi < rects[b].xhi;
        case 2: return rects[a].ylo < rects[b].ylo;
        default: return rects[a].yhi < rects[b].yhi;
      }
    });
    return order;
  };

  struct Candidate {
    std::vector<size_t> group_a;
    double area_sum;
    double overlap;
    double margin_sum;
  };
  std::vector<Candidate> candidates;
  double max_area = 1e-12;
  for (int mode = 0; mode < static_cast<int>(kSplitActions); ++mode) {
    const std::vector<size_t> order = sorted_by(mode);
    // Prefix/suffix MBRs for O(n) split evaluation.
    std::vector<Rect> prefix(n), suffix(n);
    Rect acc = Rect::Empty();
    for (size_t i = 0; i < n; ++i) {
      acc = Union(acc, rects[order[i]]);
      prefix[i] = acc;
    }
    acc = Rect::Empty();
    for (size_t i = n; i-- > 0;) {
      acc = Union(acc, rects[order[i]]);
      suffix[i] = acc;
    }
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_split = min_fill;
    for (size_t split = min_fill; split + min_fill <= n; ++split) {
      const double ov = IntersectionArea(prefix[split - 1], suffix[split]);
      const double area = prefix[split - 1].Area() + suffix[split].Area();
      const double score = ov * 10 + area;
      if (score < best_score) {
        best_score = score;
        best_split = split;
      }
    }
    Candidate cand;
    cand.group_a.assign(order.begin(), order.begin() + best_split);
    cand.area_sum =
        prefix[best_split - 1].Area() + suffix[best_split].Area();
    cand.overlap = IntersectionArea(prefix[best_split - 1], suffix[best_split]);
    cand.margin_sum =
        prefix[best_split - 1].Margin() + suffix[best_split].Margin();
    max_area = std::max(max_area, cand.area_sum);
    candidates.push_back(std::move(cand));
  }

  std::vector<ml::Vec> feats(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    feats[i] = {candidates[i].area_sum / max_area,
                candidates[i].overlap / max_area,
                candidates[i].margin_sum, 1.0};
  }
  size_t pick;
  if (training_) {
    pick = SelectCandidate(split_q_, feats, /*explore=*/true);
    const double reward =
        -(feats[pick][0] + options_.overlap_weight * feats[pick][1]);
    split_q_.Update(0, feats[pick], reward, 0.0);
    split_q_.EndEpisode();
    ++updates_;
  } else {
    pick = SelectCandidate(split_q_, feats, /*explore=*/false);
  }
  return candidates[pick].group_a;
}

size_t RlrPolicy::SelectCandidate(ml::LinearQLearner& q,
                                  const std::vector<ml::Vec>& feats,
                                  bool explore) {
  ML4DB_CHECK(!feats.empty());
  if (explore && rng_.Bernoulli(q.epsilon())) {
    return rng_.NextUint64(feats.size());
  }
  size_t best = 0;
  double best_q = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < feats.size(); ++i) {
    const double value = q.Q(0, feats[i]);
    if (value > best_q) {
      best_q = value;
      best = i;
    }
  }
  return best;
}

RlrTree::RlrTree(RTree::Options tree_options,
                 RlrPolicy::Options policy_options, uint64_t seed)
    : tree_options_(tree_options),
      policy_(std::make_shared<RlrPolicy>(policy_options, seed)),
      tree_(tree_options, policy_) {}

void RlrTree::TrainAndFreeze(const std::vector<SpatialEntry>& training_entries) {
  policy_->set_training(true);
  {
    // Scratch tree: absorbs the exploration noise, then is discarded.
    RTree scratch(tree_options_, policy_);
    for (const auto& e : training_entries) scratch.Insert(e);
  }
  policy_->set_training(false);
  tree_ = RTree(tree_options_, policy_);
}

}  // namespace spatial
}  // namespace ml4db
