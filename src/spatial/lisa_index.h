// LISA-style learned spatial index (Li et al. 2020; paper §3.2,
// replacement paradigm): instead of a space-filling curve, learn a mapping
// from points to 1-d shard ids directly from the data distribution. We
// realize the mapping as data-adaptive quantile partitions: x-strips of
// equal mass, each cut into y-cells of equal mass — a monotone piecewise
// mapping fit to the data (LISA's Lebesgue-measure mapping specialized to
// a grid). Range queries are exact; KNN uses expanding cell rings.

#ifndef ML4DB_SPATIAL_LISA_INDEX_H_
#define ML4DB_SPATIAL_LISA_INDEX_H_

#include <vector>

#include "common/status.h"
#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// Learned shard-mapping spatial index over points.
class LisaIndex {
 public:
  /// @param shards_per_axis grid resolution learned from data quantiles
  explicit LisaIndex(size_t shards_per_axis = 64)
      : grid_(shards_per_axis) {}

  Status Build(const std::vector<Point>& points,
               const std::vector<uint64_t>& ids);

  /// Exact range query; nodes_accessed counts visited shards.
  QueryStats RangeQuery(const Rect& query) const;

  /// Exact KNN via expanding shard rings.
  QueryStats KnnQuery(const Point& p, size_t k) const;

  size_t size() const { return total_; }
  size_t StructureBytes() const;

 private:
  struct Cell {
    std::vector<Point> points;
    std::vector<uint64_t> ids;
  };

  size_t StripOf(double x) const;
  size_t CellOf(size_t strip, double y) const;

  size_t grid_;
  size_t total_ = 0;
  std::vector<double> x_bounds_;               // grid_+1 strip boundaries
  std::vector<std::vector<double>> y_bounds_;  // per strip, grid_+1 bounds
  std::vector<std::vector<Cell>> cells_;       // [strip][cell]
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_LISA_INDEX_H_
