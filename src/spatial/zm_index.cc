#include "spatial/zm_index.h"

#include <algorithm>
#include <cmath>

namespace ml4db {
namespace spatial {

ZmIndex::ZmIndex(size_t epsilon, int bits) : epsilon_(epsilon), bits_(bits) {}

Status ZmIndex::Build(const std::vector<Point>& points,
                      const std::vector<uint64_t>& ids) {
  if (points.size() != ids.size()) {
    return Status::InvalidArgument("points/ids size mismatch");
  }
  const size_t n = points.size();
  std::vector<size_t> order(n);
  std::vector<int64_t> z(n);
  for (size_t i = 0; i < n; ++i) {
    z[i] = static_cast<int64_t>(ZOrder(points[i], bits_));
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return z[a] < z[b]; });
  points_.resize(n);
  ids_.resize(n);
  zvals_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    points_[i] = points[order[i]];
    ids_[i] = ids[order[i]];
    zvals_[i] = z[order[i]];
  }
  // The PGM requires strictly increasing keys; co-located points share a
  // z-value, so index unique z-values and scan duplicates at query time.
  std::vector<learned_index::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || zvals_[i] != zvals_[i - 1]) {
      entries.push_back({zvals_[i], i});
    }
  }
  pgm_ = std::make_unique<learned_index::PgmIndex>(epsilon_);
  return pgm_->BulkLoad(entries);
}

QueryStats ZmIndex::RangeQuery(const Rect& query) const {
  QueryStats stats;
  if (points_.empty()) return stats;
  const int64_t zlo =
      static_cast<int64_t>(ZOrder({query.xlo, query.ylo}, bits_));
  const int64_t zhi =
      static_cast<int64_t>(ZOrder({query.xhi, query.yhi}, bits_));
  // All points in the query box have z in [zlo, zhi] (Z-order property for
  // the corner codes); the interval also contains non-matching candidates
  // which we filter out.
  const auto first_positions = pgm_->RangeScan(zlo, zhi);
  size_t inspected = 0;
  if (!first_positions.empty()) {
    size_t i = static_cast<size_t>(first_positions.front());
    for (; i < points_.size() && zvals_[i] <= zhi; ++i) {
      ++inspected;
      if (query.ContainsPoint(points_[i])) stats.results.push_back(ids_[i]);
    }
  }
  // Page-granularity access proxy (64 candidates per "page") plus the
  // learned-index probe itself.
  stats.nodes_accessed = 1 + inspected / 64;
  return stats;
}

QueryStats ZmIndex::KnnQuery(const Point& p, size_t k,
                             size_t window_factor) const {
  QueryStats stats;
  if (points_.empty() || k == 0) return stats;
  const int64_t zq = static_cast<int64_t>(ZOrder(p, bits_));
  const size_t center = pgm_->LowerBoundPos(zq);
  const size_t window = std::max<size_t>(k * window_factor, k);
  const size_t lo = center > window ? center - window : 0;
  const size_t hi = std::min(points_.size(), center + window);
  std::vector<std::pair<double, uint64_t>> cand;
  for (size_t i = lo; i < hi; ++i) {
    cand.emplace_back(Dist2(p, points_[i]), ids_[i]);
  }
  std::sort(cand.begin(), cand.end());
  for (size_t i = 0; i < std::min(cand.size(), k); ++i) {
    stats.results.push_back(cand[i].second);
  }
  stats.nodes_accessed = 1 + (hi - lo) / 64;
  return stats;
}

size_t ZmIndex::StructureBytes() const {
  return (pgm_ ? pgm_->StructureBytes() : 0) +
         points_.size() * (sizeof(Point) + sizeof(uint64_t) + sizeof(int64_t));
}

}  // namespace spatial
}  // namespace ml4db
