// ZM-index (Wang et al. 2019) — the first learned spatial index (paper
// §3.2, replacement paradigm): linearize points by Z-order, learn the CDF
// of z-values (we use the ε-bounded PGM as the 1-d learned index), and
// answer spatial queries through the 1-d structure.
//
// Faithful limitations (the paper's generalization critique):
//  * point data only — no rectangles;
//  * KNN is approximate: it inspects a z-order window around the query
//    point, which can miss true neighbors across Z-curve discontinuities.

#ifndef ML4DB_SPATIAL_ZM_INDEX_H_
#define ML4DB_SPATIAL_ZM_INDEX_H_

#include <memory>

#include "learned_index/pgm_index.h"
#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// Learned Z-order spatial index over points.
class ZmIndex {
 public:
  /// @param epsilon  PGM error bound on z-value positions
  /// @param bits     Z-curve resolution bits per dimension
  explicit ZmIndex(size_t epsilon = 32, int bits = 20);

  /// Builds from points; ids are payloads.
  Status Build(const std::vector<Point>& points,
               const std::vector<uint64_t>& ids);

  /// Exact range query: scans the z-interval [z(lo), z(hi)] through the
  /// learned index and filters to the query rectangle. `nodes_accessed`
  /// counts inspected candidates / 64 (a page-granularity proxy comparable
  /// to R-tree node accesses).
  QueryStats RangeQuery(const Rect& query) const;

  /// Approximate KNN: the k nearest among a z-order window of
  /// `window_factor * k` candidates around the query point.
  QueryStats KnnQuery(const Point& p, size_t k, size_t window_factor = 8) const;

  size_t size() const { return points_.size(); }
  size_t StructureBytes() const;

 private:
  size_t epsilon_;
  int bits_;
  std::unique_ptr<learned_index::PgmIndex> pgm_;
  // Data ordered by z-value.
  std::vector<Point> points_;
  std::vector<uint64_t> ids_;
  std::vector<int64_t> zvals_;
};

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_ZM_INDEX_H_
