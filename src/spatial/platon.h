// PLATON (Yang & Cong 2023; paper §3.2, ML-enhanced bulk-loading): top-down
// R-tree packing whose partition policy is *learned* with Monte Carlo Tree
// Search against the given data + query workload, instead of the fixed
// space-filling heuristic of STR.
//
// Scope of this reimplementation (the paper's own optimizations, scaled to
// our substrate): MCTS decides (axis, quantile) cuts for large blocks;
// value rollouts are evaluated on entry and query *samples* (PLATON's
// sampling-based value approximation); blocks below a threshold fall back
// to the workload-greedy cut, and leaf-sized blocks are emitted directly —
// keeping the whole build near-linear.

#ifndef ML4DB_SPATIAL_PLATON_H_
#define ML4DB_SPATIAL_PLATON_H_

#include "spatial/rtree.h"

namespace ml4db {
namespace spatial {

/// Options for PLATON packing.
struct PlatonOptions {
  size_t leaf_capacity = 32;       ///< entries per packed leaf (match STR)
  size_t mcts_iterations = 48;     ///< simulations per partition decision
  size_t mcts_min_block = 4096;    ///< blocks below this use greedy cuts
  size_t value_sample = 512;       ///< entry subsample for rollout evaluation
  size_t query_sample = 64;        ///< query subsample for rollout evaluation
  uint64_t seed = 123;
};

/// Packs `entries` into an RTree optimized for `workload_queries`.
/// `tree_options` controls node capacities of the resulting tree.
RTree PlatonPack(const std::vector<SpatialEntry>& entries,
                 const std::vector<Rect>& workload_queries,
                 RTree::Options tree_options, const PlatonOptions& options);

/// The leaf partition PLATON produces (exposed for tests: every entry must
/// appear in exactly one leaf, leaves respect capacity).
std::vector<std::vector<SpatialEntry>> PlatonPartition(
    const std::vector<SpatialEntry>& entries,
    const std::vector<Rect>& workload_queries, const PlatonOptions& options);

}  // namespace spatial
}  // namespace ml4db

#endif  // ML4DB_SPATIAL_PLATON_H_
