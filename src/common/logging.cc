#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ml4db {
namespace internal {

namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel ParseLevel(const char* s) {
  if (s == nullptr || s[0] == '\0') return LogLevel::kInfo;
  auto matches = [s](const char* name) {
    for (size_t i = 0; name[i] != '\0' || s[i] != '\0'; ++i) {
      const char a = s[i] >= 'a' && s[i] <= 'z' ? s[i] - 'a' + 'A' : s[i];
      if (a != name[i]) return false;
    }
    return true;
  };
  if (matches("DEBUG")) return LogLevel::kDebug;
  if (matches("INFO")) return LogLevel::kInfo;
  if (matches("WARN") || matches("WARNING")) return LogLevel::kWarn;
  if (matches("ERROR")) return LogLevel::kError;
  if (matches("OFF") || matches("NONE")) return LogLevel::kOff;
  std::fprintf(stderr,
               "[ml4db][WARN] unrecognized ML4DB_LOG_LEVEL=\"%s\", "
               "using INFO\n",
               s);
  return LogLevel::kInfo;
}

/// The single log sink: "[ml4db][LEVEL] file:line: message".
void SinkWrite(LogLevel level, const char* file, int line, const char* msg) {
  // Trim the path to the basename for readable one-liners.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[ml4db][%s] %s:%d: %s\n", LevelTag(level), base, line,
               msg);
}

}  // namespace

LogLevel MinLogLevel() {
  static const LogLevel level = ParseLevel(std::getenv("ML4DB_LOG_LEVEL"));
  return level;
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  SinkWrite(level, file, line, buf);
}

void CheckFailed(const char* file, int line, const char* expr,
                 const char* msg) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), "CHECK failed: %s%s%s", expr,
                (msg != nullptr && msg[0] != '\0') ? " — " : "",
                msg != nullptr ? msg : "");
  // Bypass the level filter: a fatal assertion always reaches the sink.
  SinkWrite(LogLevel::kError, file, line, buf);
  std::abort();
}

}  // namespace internal
}  // namespace ml4db
