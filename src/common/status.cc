#include "common/status.h"

namespace ml4db {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace ml4db
