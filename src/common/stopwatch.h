// Wall-clock stopwatch used by benchmarks and training loops.

#ifndef ML4DB_COMMON_STOPWATCH_H_
#define ML4DB_COMMON_STOPWATCH_H_

#include <chrono>

namespace ml4db {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ml4db

#endif  // ML4DB_COMMON_STOPWATCH_H_
