// Assertion and lightweight logging macros.
//
// ML4DB_CHECK fires in all build types and is used at API boundaries for
// conditions that indicate caller bugs. ML4DB_DCHECK compiles out in
// release builds and guards internal invariants on hot paths.

#ifndef ML4DB_COMMON_LOGGING_H_
#define ML4DB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace ml4db {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "[ml4db] CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace internal
}  // namespace ml4db

#define ML4DB_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ml4db::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (0)

#define ML4DB_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ml4db::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ML4DB_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ML4DB_DCHECK(cond) ML4DB_CHECK(cond)
#endif

#endif  // ML4DB_COMMON_LOGGING_H_
