// Assertion and leveled logging macros.
//
// ML4DB_CHECK fires in all build types and is used at API boundaries for
// conditions that indicate caller bugs. ML4DB_DCHECK compiles out in
// release builds and guards internal invariants on hot paths.
//
// ML4DB_LOG(LEVEL, fmt, ...) is printf-style leveled logging to stderr.
// The minimum emitted level comes from the ML4DB_LOG_LEVEL environment
// variable (DEBUG, INFO, WARN, ERROR, or OFF; default INFO), read once at
// first use. CHECK failures route through the same sink (unconditionally —
// a fatal assertion is never filtered) before aborting.

#ifndef ML4DB_COMMON_LOGGING_H_
#define ML4DB_COMMON_LOGGING_H_

namespace ml4db {

/// Log severities, ascending. kOff is only meaningful as a filter level.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

namespace internal {

/// Minimum level that gets emitted (parsed once from ML4DB_LOG_LEVEL).
LogLevel MinLogLevel();

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevel());
}

/// Formats and writes one log line to the sink (stderr). Does not filter —
/// callers (the ML4DB_LOG macro) check LogEnabled first.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const char* msg);

}  // namespace internal
}  // namespace ml4db

// Severity tokens for ML4DB_LOG's first argument.
#define ML4DB_INTERNAL_LOGLEVEL_DEBUG ::ml4db::LogLevel::kDebug
#define ML4DB_INTERNAL_LOGLEVEL_INFO ::ml4db::LogLevel::kInfo
#define ML4DB_INTERNAL_LOGLEVEL_WARN ::ml4db::LogLevel::kWarn
#define ML4DB_INTERNAL_LOGLEVEL_ERROR ::ml4db::LogLevel::kError

/// Usage: ML4DB_LOG(INFO, "loaded %zu rows in %.2fs", n, secs);
#define ML4DB_LOG(severity, ...)                                       \
  do {                                                                 \
    if (::ml4db::internal::LogEnabled(                                 \
            ML4DB_INTERNAL_LOGLEVEL_##severity)) {                     \
      ::ml4db::internal::LogMessage(ML4DB_INTERNAL_LOGLEVEL_##severity, \
                                    __FILE__, __LINE__, __VA_ARGS__);  \
    }                                                                  \
  } while (0)

#define ML4DB_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ml4db::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                  \
  } while (0)

#define ML4DB_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::ml4db::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ML4DB_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ML4DB_DCHECK(cond) ML4DB_CHECK(cond)
#endif

#endif  // ML4DB_COMMON_LOGGING_H_
