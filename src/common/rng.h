// Deterministic pseudo-random number generation.
//
// Every stochastic component in ml4db takes an explicit seed and draws from
// Rng so that experiments are bit-reproducible across runs and machines.
// The core generator is xoshiro256**, seeded via SplitMix64.

#ifndef ML4DB_COMMON_RNG_H_
#define ML4DB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ml4db {

/// SplitMix64 step; used for seeding and cheap hashing.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; create one Rng per thread / component.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds produce independent-looking
  /// streams; the same seed always produces the same stream.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
    gauss_valid_ = false;
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n) {
    ML4DB_DCHECK(n > 0);
    // Modulo bias is negligible for n << 2^64 (all our uses).
    return NextUint64() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    ML4DB_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method.
  double Gaussian() {
    if (gauss_valid_) {
      gauss_valid_ = false;
      return gauss_spare_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    gauss_spare_ = v * mul;
    gauss_valid_ = true;
    return u * mul;
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    ML4DB_DCHECK(total > 0.0);
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Forks a statistically independent child generator. Useful for giving
  /// each sub-component its own stream derived from one experiment seed.
  Rng Fork() { return Rng(NextUint64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double gauss_spare_ = 0.0;
  bool gauss_valid_ = false;
};

/// Zipf-distributed integer sampler over {0, ..., n-1} with exponent theta.
/// Uses the rejection-inversion method of Hörmann & Derflinger, O(1) per
/// sample after O(1) setup, valid for theta in (0, ~10].
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
    ML4DB_CHECK(n >= 1);
    ML4DB_CHECK(theta > 0.0);
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n) + 0.5);
    s_ = 2.0 - HInv(H(2.5) - std::pow(2.0, -theta_));
  }

  /// Draws one sample (0-based rank; rank 0 is the most frequent).
  uint64_t Sample(Rng& rng) {
    while (true) {
      const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
      const double x = HInv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -theta_)) {
        return k - 1;
      }
    }
  }

 private:
  double H(double x) const {
    if (std::abs(theta_ - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - theta_) - 1.0) / (1.0 - theta_);
  }
  double HInv(double x) const {
    if (std::abs(theta_ - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - theta_), 1.0 / (1.0 - theta_));
  }

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace ml4db

#endif  // ML4DB_COMMON_RNG_H_
