#include "common/math_util.h"

#include <numeric>

namespace ml4db {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Quantile(std::vector<double> v, double q) {
  ML4DB_CHECK(!v.empty());
  ML4DB_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double GeometricMean(const std::vector<double>& v) {
  ML4DB_CHECK(!v.empty());
  double acc = 0.0;
  for (double x : v) {
    ML4DB_CHECK(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(v.size()));
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  ML4DB_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  ML4DB_CHECK(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t ia = 0, ib = 0;
  double d = 0.0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (ia < a.size() && ib < b.size()) {
    // Advance past all copies of the smaller value (both sides on ties) so
    // identical samples yield D = 0.
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

double JensenShannon(const std::vector<double>& p, const std::vector<double>& q) {
  ML4DB_CHECK(p.size() == q.size());
  ML4DB_CHECK(!p.empty());
  double sp = std::accumulate(p.begin(), p.end(), 0.0);
  double sq = std::accumulate(q.begin(), q.end(), 0.0);
  ML4DB_CHECK(sp > 0.0 && sq > 0.0);
  double js = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / sp;
    const double qi = q[i] / sq;
    const double mi = 0.5 * (pi + qi);
    if (pi > 0.0) js += 0.5 * pi * std::log(pi / mi);
    if (qi > 0.0) js += 0.5 * qi * std::log(qi / mi);
  }
  return js;
}

}  // namespace ml4db
