// Status / StatusOr error model for ml4db.
//
// Fallible public APIs in this library return Status (or StatusOr<T> when
// they produce a value) instead of throwing exceptions, following the
// RocksDB / Arrow convention. Status is cheap to copy in the OK case (a
// single enum; the message is only allocated on error).

#ifndef ML4DB_COMMON_STATUS_H_
#define ML4DB_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace ml4db {

/// Machine-readable error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK state carries no allocation; error states allocate a message
/// string. Use the static factories (`Status::InvalidArgument(...)`) to
/// construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return msg_ ? *msg_ : kEmpty;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message() == other.message();
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::make_shared<std::string>(std::move(msg))) {}

  StatusCode code_;
  std::shared_ptr<std::string> msg_;  // null when OK
};

/// Either a value of type T or an error Status. Access the value only after
/// checking `ok()`; accessing the value of an error StatusOr aborts in debug
/// builds and is undefined in release builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, like absl::StatusOr).
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `s` must not be OK.
  StatusOr(Status s) : data_(std::move(s)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(data_).ok() &&
           "StatusOr constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; returns OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

/// Propagates an error status from an expression to the caller.
#define ML4DB_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::ml4db::Status _st = (expr);               \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors; on success binds the
/// value to `lhs`. Usage: ML4DB_ASSIGN_OR_RETURN(auto x, Compute());
#define ML4DB_ASSIGN_OR_RETURN(lhs, expr)                    \
  ML4DB_ASSIGN_OR_RETURN_IMPL_(                              \
      ML4DB_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define ML4DB_STATUS_CONCAT_INNER_(a, b) a##b
#define ML4DB_STATUS_CONCAT_(a, b) ML4DB_STATUS_CONCAT_INNER_(a, b)
#define ML4DB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace ml4db

#endif  // ML4DB_COMMON_STATUS_H_
