// Hardened parsing for environment-variable knobs (ML4DB_THREADS,
// ML4DB_BENCH_KEYS, ...). The knobs are operator-facing, so a typo must
// not silently reconfigure the process: garbage values fall back to the
// default AND emit one WARN naming the variable and the rejected value.
// An unset/empty variable is the normal "use the default" case and stays
// silent.

#ifndef ML4DB_COMMON_ENV_H_
#define ML4DB_COMMON_ENV_H_

#include <cstdint>

namespace ml4db {
namespace common {

/// Parses `value` (the raw variable content, may be null) as a strictly
/// positive integer. Returns `fallback` — warning with `name` in the
/// message — when the value is malformed: empty after a prefix, trailing
/// garbage, signs, zero, or out of uint64 range. A null/empty `value`
/// returns `fallback` silently.
uint64_t ParsePositiveKnob(const char* name, const char* value,
                           uint64_t fallback);

/// getenv(name) + ParsePositiveKnob.
uint64_t PositiveKnobFromEnv(const char* name, uint64_t fallback);

}  // namespace common
}  // namespace ml4db

#endif  // ML4DB_COMMON_ENV_H_
