// Small statistics helpers shared across modules.

#ifndef ML4DB_COMMON_MATH_UTIL_H_
#define ML4DB_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace ml4db {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for inputs of size < 2.
double StdDev(const std::vector<double>& v);

/// q-quantile (q in [0,1]) with linear interpolation. Input need not be
/// sorted; the function copies and sorts. Empty input is a caller bug.
double Quantile(std::vector<double> v, double q);

/// Median (50th percentile).
inline double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

/// Geometric mean of strictly positive values.
double GeometricMean(const std::vector<double>& v);

/// Kendall rank correlation (tau-a) between two equally-sized vectors.
/// O(n^2); intended for evaluation on modest sample sizes.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

/// Natural log of (1 + x) safe for small x; plain wrapper for readability.
inline double Log1p(double x) { return std::log1p(x); }

/// Two-sample Kolmogorov–Smirnov statistic (max CDF distance). Inputs are
/// copied and sorted. Either input empty is a caller bug.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Jensen–Shannon divergence between two discrete distributions given as
/// (possibly unnormalized) non-negative weight vectors of equal length.
/// Returns a value in [0, ln 2].
double JensenShannon(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace ml4db

#endif  // ML4DB_COMMON_MATH_UTIL_H_
