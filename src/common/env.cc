#include "common/env.h"

#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace ml4db {
namespace common {

uint64_t ParsePositiveKnob(const char* name, const char* value,
                           uint64_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  // strtoull accepts "-1" by wrapping and "+3"/" 3" by skipping — all of
  // which we treat as operator error, so require a bare digit up front.
  if (value[0] < '0' || value[0] > '9') {
    ML4DB_LOG(WARN, "ignoring %s=\"%s\" (not a positive integer); using %llu",
              name, value, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed == 0) {
    ML4DB_LOG(WARN, "ignoring %s=\"%s\" (not a positive integer); using %llu",
              name, value, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<uint64_t>(parsed);
}

uint64_t PositiveKnobFromEnv(const char* name, uint64_t fallback) {
  return ParsePositiveKnob(name, std::getenv(name), fallback);
}

}  // namespace common
}  // namespace ml4db
