// Shared fixed-size thread pool — the parallel execution & training
// substrate for the whole library. Motivated by Baihe's isolation of model
// training from the query path and Neo's concurrent value-network training
// loop: the executor's batch API, learned-index construction, and
// drift-triggered background retrains all run on this pool so learning
// never stalls serving.
//
// Design:
//  - `Submit(fn)` returns a std::future; exceptions thrown by `fn`
//    propagate through future.get().
//  - `ParallelFor(begin, end, grain, body)` splits [begin, end) into
//    chunks of at least `grain` elements. The *calling thread
//    participates* in chunk execution, so nested ParallelFor calls from
//    pool workers always make progress (no deadlock when the pool is
//    saturated) and a pool of size 1 degenerates to a plain serial loop.
//  - Pool size comes from the ML4DB_THREADS env var, defaulting to
//    std::thread::hardware_concurrency(). Size 1 is a degenerate inline
//    mode: no worker threads are spawned and Submit runs the task on the
//    caller, so single-threaded builds/tests behave exactly as before.
//  - Workers are identified by a small dense id (0..size-1) readable via
//    CurrentWorkerId(); -1 on threads not owned by a pool. The executor's
//    batch API tags trace spans with it.

#ifndef ML4DB_COMMON_THREAD_POOL_H_
#define ML4DB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace ml4db {
namespace common {

class ThreadPool {
 public:
  /// @param num_threads worker count; clamped to >= 1. Size 1 spawns no
  ///        threads (inline mode).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide shared pool, sized by DefaultSize() at first use.
  static ThreadPool& Global();

  /// ML4DB_THREADS env var if set to a positive integer, otherwise
  /// hardware_concurrency (>= 1).
  static size_t DefaultSize();

  /// Parses a ML4DB_THREADS-style value: positive integer = that many
  /// threads; unset/empty/0/garbage = `fallback`. Exposed for tests.
  static size_t ParseThreadsValue(const char* value, size_t fallback);

  /// Dense worker id of the current thread within its owning pool, or -1
  /// when called from a thread no pool owns. During inline execution
  /// (size-1 pool) tasks observe id 0.
  static int CurrentWorkerId();

  size_t size() const { return num_threads_; }

  /// Schedules `fn` and returns a future for its result. In inline mode
  /// the task runs immediately on the calling thread.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (num_threads_ <= 1) {
      RunInline([task] { (*task)(); });
      return future;
    }
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs `body(chunk_begin, chunk_end)` over disjoint chunks covering
  /// [begin, end), each at least `grain` elements (last chunk may be
  /// smaller). Blocks until every chunk ran; the caller executes chunks
  /// too. The first exception thrown by any chunk is rethrown here.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Tasks executed by pool workers since construction (diagnostics).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct ParallelState;

  void Enqueue(std::function<void()> task);
  void RunInline(const std::function<void()>& task);
  void WorkerLoop(int worker_id);

  size_t num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<uint64_t> tasks_executed_{0};
};

/// Convenience: ParallelFor on the global pool.
inline void ParallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& body) {
  ThreadPool::Global().ParallelFor(begin, end, grain, body);
}

}  // namespace common
}  // namespace ml4db

#endif  // ML4DB_COMMON_THREAD_POOL_H_
