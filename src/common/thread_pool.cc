#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/env.h"

namespace ml4db {
namespace common {

namespace {

// Dense worker id within the owning pool; -1 on foreign threads. Set for
// the duration of inline execution on size-1 pools so tasks observe a
// consistent id in both modes.
thread_local int tls_worker_id = -1;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  if (num_threads_ <= 1) return;  // inline mode: no workers
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultSize());
  return pool;
}

size_t ThreadPool::ParseThreadsValue(const char* value, size_t fallback) {
  return static_cast<size_t>(ParsePositiveKnob(
      "ML4DB_THREADS", value, static_cast<uint64_t>(fallback)));
}

size_t ThreadPool::DefaultSize() {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return ParseThreadsValue(std::getenv("ML4DB_THREADS"), hw);
}

int ThreadPool::CurrentWorkerId() { return tls_worker_id; }

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ML4DB_CHECK_MSG(!stopping_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::RunInline(const std::function<void()>& task) {
  const int prev = tls_worker_id;
  tls_worker_id = 0;
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  task();  // packaged_task: exceptions land in the future
  tls_worker_id = prev;
}

void ThreadPool::WorkerLoop(int worker_id) {
  tls_worker_id = worker_id;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

// Shared state of one ParallelFor call. Participants (the caller plus any
// pool workers that pick up a helper task) claim chunk indices from
// `next` until exhausted; the last chunk to finish signals `cv`. Chunks
// claimed after a body threw are skipped but still counted, so `done`
// always reaches `nchunks` and stragglers never hang the caller.
struct ThreadPool::ParallelState {
  size_t begin = 0;
  size_t chunk = 0;
  size_t end = 0;
  size_t nchunks = 0;
  std::function<void(size_t, size_t)> body;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> abort{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure; guarded by mu

  void RunChunks() {
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < nchunks) {
      const size_t b = begin + i * chunk;
      const size_t e = std::min(end, b + chunk);
      if (b < e && !abort.load(std::memory_order_relaxed)) {
        try {
          body(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mu);
          if (error == nullptr) error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(1, std::memory_order_relaxed) + 1 == nchunks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  grain = std::max<size_t>(1, grain);
  // Chunk count: enough for load balance (4 per thread), no smaller than
  // the grain. A single chunk — or a size-1 pool — runs serially on the
  // caller, which is also what nested calls on saturated pools fall
  // back to chunk by chunk.
  const size_t nchunks =
      std::min((n + grain - 1) / grain, num_threads_ * 4);
  if (num_threads_ <= 1 || nchunks <= 1) {
    body(begin, end);
    return;
  }

  auto state = std::make_shared<ParallelState>();
  state->begin = begin;
  state->end = end;
  state->chunk = (n + nchunks - 1) / nchunks;
  state->nchunks = nchunks;
  state->body = body;

  const size_t helpers = std::min(num_threads_, nchunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Enqueue([state] { state->RunChunks(); });
  }
  // The caller works too: guarantees progress even when every worker is
  // busy (including the nested case where the caller IS a worker).
  state->RunChunks();
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_relaxed) == state->nchunks;
    });
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace common
}  // namespace ml4db
