#include "ml/tree_models.h"

#include <algorithm>
#include <cmath>

namespace ml4db {
namespace ml {

namespace {

inline double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }

Vec SigmoidVec(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = SigmoidScalar(x[i]);
  return y;
}

Vec TanhVec(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
  return y;
}

// z = W x + U h + b where b is a (n x 1) parameter matrix.
Vec Affine2(const Matrix& w, const Vec& x, const Matrix& u, const Vec& h,
            const Matrix& b) {
  Vec z = MatVec(w, x);
  const Vec uh = MatVec(u, h);
  for (size_t i = 0; i < z.size(); ++i) z[i] += uh[i] + b.At(i, 0);
  return z;
}

}  // namespace

// ---------------------------------------------------------------------------
// FeatureTree
// ---------------------------------------------------------------------------

std::vector<int> FeatureTree::Depths() const {
  std::vector<int> depth(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int c : nodes[i].children) depth[c] = depth[i] + 1;
  }
  return depth;
}

std::vector<int> FeatureTree::DfsOrder() const {
  std::vector<int> order;
  order.reserve(nodes.size());
  std::vector<int> stack = {0};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    order.push_back(v);
    const auto& ch = nodes[v].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return order;
}

bool FeatureTree::IsTopologicallyOrdered() const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int c : nodes[i].children) {
      if (c <= static_cast<int>(i) || c >= static_cast<int>(nodes.size())) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// LstmCell
// ---------------------------------------------------------------------------

LstmCell::LstmCell(Rng& rng, size_t input_dim, size_t hidden_dim)
    : hidden_(hidden_dim) {
  const double ws = std::sqrt(1.0 / static_cast<double>(input_dim));
  const double us = std::sqrt(1.0 / static_cast<double>(hidden_dim));
  w_ = Parameter(Matrix::Randn(rng, 4 * hidden_dim, input_dim, ws));
  u_ = Parameter(Matrix::Randn(rng, 4 * hidden_dim, hidden_dim, us));
  b_ = Parameter(Matrix::Zeros(4 * hidden_dim, 1));
  // Forget-gate bias starts at 1 (standard trick for gradient flow).
  for (size_t i = hidden_dim; i < 2 * hidden_dim; ++i) b_.value.At(i, 0) = 1.0;
}

void LstmCell::Forward(const Vec& x, const Vec& h_prev, const Vec& c_prev,
                       Vec* h, Vec* c, StepCache* cache) const {
  const size_t hd = hidden_;
  const Vec z = Affine2(w_.value, x, u_.value, h_prev, b_.value);
  Vec i(hd), f(hd), o(hd), g(hd);
  for (size_t k = 0; k < hd; ++k) {
    i[k] = SigmoidScalar(z[k]);
    f[k] = SigmoidScalar(z[hd + k]);
    o[k] = SigmoidScalar(z[2 * hd + k]);
    g[k] = std::tanh(z[3 * hd + k]);
  }
  c->assign(hd, 0.0);
  h->assign(hd, 0.0);
  Vec tanh_c(hd);
  for (size_t k = 0; k < hd; ++k) {
    (*c)[k] = f[k] * c_prev[k] + i[k] * g[k];
    tanh_c[k] = std::tanh((*c)[k]);
    (*h)[k] = o[k] * tanh_c[k];
  }
  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = h_prev;
    cache->c_prev = c_prev;
    cache->i = std::move(i);
    cache->f = std::move(f);
    cache->o = std::move(o);
    cache->g = std::move(g);
    cache->c = *c;
    cache->h = *h;
    cache->tanh_c = std::move(tanh_c);
  }
}

void LstmCell::Backward(const Vec& dh, const Vec& dc_in,
                        const StepCache& cache, Vec* dx, Vec* dh_prev,
                        Vec* dc_prev) {
  const size_t hd = hidden_;
  Vec dz(4 * hd, 0.0);
  dc_prev->assign(hd, 0.0);
  for (size_t k = 0; k < hd; ++k) {
    const double dck =
        dc_in[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
    const double dok = dh[k] * cache.tanh_c[k];
    const double dik = dck * cache.g[k];
    const double dfk = dck * cache.c_prev[k];
    const double dgk = dck * cache.i[k];
    (*dc_prev)[k] = dck * cache.f[k];
    dz[k] = dik * cache.i[k] * (1.0 - cache.i[k]);
    dz[hd + k] = dfk * cache.f[k] * (1.0 - cache.f[k]);
    dz[2 * hd + k] = dok * cache.o[k] * (1.0 - cache.o[k]);
    dz[3 * hd + k] = dgk * (1.0 - cache.g[k] * cache.g[k]);
  }
  AddOuter(w_.grad, dz, cache.x);
  AddOuter(u_.grad, dz, cache.h_prev);
  for (size_t k = 0; k < 4 * hd; ++k) b_.grad.At(k, 0) += dz[k];
  *dx = MatTVec(w_.value, dz);
  *dh_prev = MatTVec(u_.value, dz);
}

// ---------------------------------------------------------------------------
// DfsLstmEncoder
// ---------------------------------------------------------------------------

struct DfsLstmEncoder::LstmCacheImpl : TreeEncoder::Cache {
  std::vector<LstmCell::StepCache> steps;
  std::vector<int> order;
};

DfsLstmEncoder::DfsLstmEncoder(Rng& rng, size_t input_dim, size_t hidden_dim)
    : cell_(rng, input_dim, hidden_dim) {}

Vec DfsLstmEncoder::Encode(const FeatureTree& tree,
                           std::unique_ptr<Cache>* cache) const {
  ML4DB_CHECK(!tree.nodes.empty());
  auto impl = cache != nullptr ? std::make_unique<LstmCacheImpl>() : nullptr;
  const std::vector<int> order = tree.DfsOrder();
  Vec h(cell_.hidden_dim(), 0.0), c(cell_.hidden_dim(), 0.0);
  if (impl) impl->steps.resize(order.size());
  for (size_t t = 0; t < order.size(); ++t) {
    Vec h_next, c_next;
    cell_.Forward(tree.nodes[order[t]].features, h, c, &h_next, &c_next,
                  impl ? &impl->steps[t] : nullptr);
    h = std::move(h_next);
    c = std::move(c_next);
  }
  if (impl) {
    impl->order = order;
    *cache = std::move(impl);
  }
  return h;
}

void DfsLstmEncoder::Backward(const Vec& grad_out, const FeatureTree& tree,
                              const Cache& cache) {
  (void)tree;
  const auto& impl = static_cast<const LstmCacheImpl&>(cache);
  Vec dh = grad_out;
  Vec dc(cell_.hidden_dim(), 0.0);
  for (size_t t = impl.steps.size(); t-- > 0;) {
    Vec dx, dh_prev, dc_prev;
    cell_.Backward(dh, dc, impl.steps[t], &dx, &dh_prev, &dc_prev);
    dh = std::move(dh_prev);
    dc = std::move(dc_prev);
  }
}

// ---------------------------------------------------------------------------
// TreeLstmEncoder (child-sum)
// ---------------------------------------------------------------------------

struct TreeLstmEncoder::NodeCache {
  Vec h_sum;
  Vec i, o, u;
  std::vector<Vec> f;  // one forget gate per child
  Vec c, h, tanh_c;
};

struct TreeLstmEncoder::TreeCacheImpl : TreeEncoder::Cache {
  std::vector<NodeCache> nodes;
};

TreeLstmEncoder::TreeLstmEncoder(Rng& rng, size_t input_dim, size_t hidden_dim)
    : hidden_(hidden_dim) {
  const double ws = std::sqrt(1.0 / static_cast<double>(input_dim));
  const double us = std::sqrt(1.0 / static_cast<double>(hidden_dim));
  auto mk_w = [&] { return Parameter(Matrix::Randn(rng, hidden_dim, input_dim, ws)); };
  auto mk_u = [&] { return Parameter(Matrix::Randn(rng, hidden_dim, hidden_dim, us)); };
  auto mk_b = [&] { return Parameter(Matrix::Zeros(hidden_dim, 1)); };
  wi_ = mk_w(); ui_ = mk_u(); bi_ = mk_b();
  wf_ = mk_w(); uf_ = mk_u(); bf_ = mk_b();
  wo_ = mk_w(); uo_ = mk_u(); bo_ = mk_b();
  wu_ = mk_w(); uu_ = mk_u(); bu_ = mk_b();
  for (size_t k = 0; k < hidden_dim; ++k) bf_.value.At(k, 0) = 1.0;
}

void TreeLstmEncoder::ForwardNode(const FeatureTree& tree, int idx,
                                  std::vector<NodeCache>& caches) const {
  // Children are at larger indices and have been processed already when we
  // iterate from the back of the node array; this method assumes caches for
  // children are valid.
  const auto& node = tree.nodes[idx];
  NodeCache& nc = caches[idx];
  nc.h_sum.assign(hidden_, 0.0);
  for (int c : node.children) {
    AxpyInPlace(nc.h_sum, caches[c].h, 1.0);
  }
  nc.i = SigmoidVec(Affine2(wi_.value, node.features, ui_.value, nc.h_sum, bi_.value));
  nc.o = SigmoidVec(Affine2(wo_.value, node.features, uo_.value, nc.h_sum, bo_.value));
  nc.u = TanhVec(Affine2(wu_.value, node.features, uu_.value, nc.h_sum, bu_.value));
  nc.c = VecMul(nc.i, nc.u);
  nc.f.clear();
  for (int c : node.children) {
    Vec fk = SigmoidVec(
        Affine2(wf_.value, node.features, uf_.value, caches[c].h, bf_.value));
    for (size_t k = 0; k < hidden_; ++k) nc.c[k] += fk[k] * caches[c].c[k];
    nc.f.push_back(std::move(fk));
  }
  nc.tanh_c = TanhVec(nc.c);
  nc.h = VecMul(nc.o, nc.tanh_c);
}

Vec TreeLstmEncoder::Encode(const FeatureTree& tree,
                            std::unique_ptr<Cache>* cache) const {
  ML4DB_CHECK(!tree.nodes.empty());
  ML4DB_DCHECK(tree.IsTopologicallyOrdered());
  auto impl = std::make_unique<TreeCacheImpl>();
  impl->nodes.resize(tree.size());
  // Children have larger indices, so iterating from the back processes
  // leaves before parents.
  for (size_t i = tree.size(); i-- > 0;) {
    ForwardNode(tree, static_cast<int>(i), impl->nodes);
  }
  Vec out = impl->nodes[0].h;
  if (cache != nullptr) *cache = std::move(impl);
  return out;
}

void TreeLstmEncoder::Backward(const Vec& grad_out, const FeatureTree& tree,
                               const Cache& cache) {
  const auto& impl = static_cast<const TreeCacheImpl&>(cache);
  const size_t n = tree.size();
  std::vector<Vec> dh(n, Vec(hidden_, 0.0));
  std::vector<Vec> dc(n, Vec(hidden_, 0.0));
  dh[0] = grad_out;
  // Parents come before children, so a forward pass propagates gradients
  // top-down.
  for (size_t idx = 0; idx < n; ++idx) {
    const auto& node = tree.nodes[idx];
    const NodeCache& nc = impl.nodes[idx];
    Vec dck(hidden_);
    Vec dzo(hidden_), dzi(hidden_), dzu(hidden_);
    for (size_t k = 0; k < hidden_; ++k) {
      dck[k] = dc[idx][k] +
               dh[idx][k] * nc.o[k] * (1.0 - nc.tanh_c[k] * nc.tanh_c[k]);
      const double dok = dh[idx][k] * nc.tanh_c[k];
      const double dik = dck[k] * nc.u[k];
      const double duk = dck[k] * nc.i[k];
      dzo[k] = dok * nc.o[k] * (1.0 - nc.o[k]);
      dzi[k] = dik * nc.i[k] * (1.0 - nc.i[k]);
      dzu[k] = duk * (1.0 - nc.u[k] * nc.u[k]);
    }
    AddOuter(wi_.grad, dzi, node.features);
    AddOuter(ui_.grad, dzi, nc.h_sum);
    AddOuter(wo_.grad, dzo, node.features);
    AddOuter(uo_.grad, dzo, nc.h_sum);
    AddOuter(wu_.grad, dzu, node.features);
    AddOuter(uu_.grad, dzu, nc.h_sum);
    for (size_t k = 0; k < hidden_; ++k) {
      bi_.grad.At(k, 0) += dzi[k];
      bo_.grad.At(k, 0) += dzo[k];
      bu_.grad.At(k, 0) += dzu[k];
    }
    Vec dh_sum = MatTVec(ui_.value, dzi);
    AxpyInPlace(dh_sum, MatTVec(uo_.value, dzo), 1.0);
    AxpyInPlace(dh_sum, MatTVec(uu_.value, dzu), 1.0);
    for (size_t ci = 0; ci < node.children.size(); ++ci) {
      const int child = node.children[ci];
      const Vec& fk = nc.f[ci];
      const NodeCache& cc = impl.nodes[child];
      Vec dzf(hidden_);
      for (size_t k = 0; k < hidden_; ++k) {
        const double dfk = dck[k] * cc.c[k];
        dzf[k] = dfk * fk[k] * (1.0 - fk[k]);
        dc[child][k] += dck[k] * fk[k];
        dh[child][k] += dh_sum[k];
      }
      AddOuter(wf_.grad, dzf, node.features);
      AddOuter(uf_.grad, dzf, cc.h);
      for (size_t k = 0; k < hidden_; ++k) bf_.grad.At(k, 0) += dzf[k];
      const Vec dh_child = MatTVec(uf_.value, dzf);
      AxpyInPlace(dh[child], dh_child, 1.0);
    }
  }
}

// ---------------------------------------------------------------------------
// TreeCnnEncoder
// ---------------------------------------------------------------------------

struct TreeCnnEncoder::CnnCacheImpl : TreeEncoder::Cache {
  // Pre-activation conv output per node (F each) and the argmax node per
  // filter from the max pooling.
  std::vector<Vec> conv;   // post-ReLU
  std::vector<int> argmax; // size F
};

TreeCnnEncoder::TreeCnnEncoder(Rng& rng, size_t input_dim, size_t filters)
    : filters_(filters) {
  const double s = std::sqrt(2.0 / static_cast<double>(3 * input_dim + filters));
  wp_ = Parameter(Matrix::Randn(rng, filters, input_dim, s));
  wl_ = Parameter(Matrix::Randn(rng, filters, input_dim, s));
  wr_ = Parameter(Matrix::Randn(rng, filters, input_dim, s));
  b_ = Parameter(Matrix::Zeros(filters, 1));
}

Vec TreeCnnEncoder::Encode(const FeatureTree& tree,
                           std::unique_ptr<Cache>* cache) const {
  ML4DB_CHECK(!tree.nodes.empty());
  auto impl = std::make_unique<CnnCacheImpl>();
  impl->conv.resize(tree.size());
  for (size_t v = 0; v < tree.size(); ++v) {
    const auto& node = tree.nodes[v];
    Vec z = MatVec(wp_.value, node.features);
    if (!node.children.empty()) {
      const Vec zl = MatVec(wl_.value, tree.nodes[node.children.front()].features);
      AxpyInPlace(z, zl, 1.0);
    }
    if (node.children.size() >= 2) {
      const Vec zr = MatVec(wr_.value, tree.nodes[node.children.back()].features);
      AxpyInPlace(z, zr, 1.0);
    }
    for (size_t k = 0; k < filters_; ++k) {
      z[k] += b_.value.At(k, 0);
      if (z[k] < 0.0) z[k] = 0.0;  // ReLU
    }
    impl->conv[v] = std::move(z);
  }
  // Global max pooling over nodes.
  Vec out(filters_, 0.0);
  impl->argmax.assign(filters_, 0);
  for (size_t k = 0; k < filters_; ++k) {
    double best = impl->conv[0][k];
    int best_v = 0;
    for (size_t v = 1; v < tree.size(); ++v) {
      if (impl->conv[v][k] > best) {
        best = impl->conv[v][k];
        best_v = static_cast<int>(v);
      }
    }
    out[k] = best;
    impl->argmax[k] = best_v;
  }
  if (cache != nullptr) *cache = std::move(impl);
  return out;
}

void TreeCnnEncoder::Backward(const Vec& grad_out, const FeatureTree& tree,
                              const Cache& cache) {
  const auto& impl = static_cast<const CnnCacheImpl&>(cache);
  // Group pooled gradients by source node so each node's rank-1 updates are
  // applied once per filter hit.
  for (size_t k = 0; k < filters_; ++k) {
    const int v = impl.argmax[k];
    const double y = impl.conv[v][k];
    if (y <= 0.0) continue;  // ReLU gate closed
    const double dz = grad_out[k];
    if (dz == 0.0) continue;
    const auto& node = tree.nodes[v];
    // dW row k += dz * x.
    for (size_t c = 0; c < node.features.size(); ++c) {
      wp_.grad.At(k, c) += dz * node.features[c];
    }
    if (!node.children.empty()) {
      const Vec& xl = tree.nodes[node.children.front()].features;
      for (size_t c = 0; c < xl.size(); ++c) wl_.grad.At(k, c) += dz * xl[c];
    }
    if (node.children.size() >= 2) {
      const Vec& xr = tree.nodes[node.children.back()].features;
      for (size_t c = 0; c < xr.size(); ++c) wr_.grad.At(k, c) += dz * xr[c];
    }
    b_.grad.At(k, 0) += dz;
  }
}

// ---------------------------------------------------------------------------
// TreeAttentionEncoder
// ---------------------------------------------------------------------------

struct TreeAttentionEncoder::AttnCacheImpl : TreeEncoder::Cache {
  std::vector<int> depths;
  std::vector<Vec> embed;  // tanh output per node (pre positional add)
  Matrix x;                // n x D node representations
  Matrix q, k, v;          // n x D
  Matrix a;                // n x n attention weights
};

TreeAttentionEncoder::TreeAttentionEncoder(Rng& rng, size_t input_dim,
                                           size_t model_dim, size_t max_depth)
    : dim_(model_dim), max_depth_(max_depth) {
  const double es = std::sqrt(2.0 / static_cast<double>(input_dim + model_dim));
  const double ps = 0.1;
  const double as = std::sqrt(1.0 / static_cast<double>(model_dim));
  embed_w_ = Parameter(Matrix::Randn(rng, model_dim, input_dim, es));
  embed_b_ = Parameter(Matrix::Zeros(model_dim, 1));
  pos_ = Parameter(Matrix::Randn(rng, max_depth, model_dim, ps));
  wq_ = Parameter(Matrix::Randn(rng, model_dim, model_dim, as));
  wk_ = Parameter(Matrix::Randn(rng, model_dim, model_dim, as));
  wv_ = Parameter(Matrix::Randn(rng, model_dim, model_dim, as));
}

Vec TreeAttentionEncoder::Encode(const FeatureTree& tree,
                                 std::unique_ptr<Cache>* cache) const {
  ML4DB_CHECK(!tree.nodes.empty());
  const size_t n = tree.size();
  auto impl = std::make_unique<AttnCacheImpl>();
  impl->depths = tree.Depths();
  impl->embed.resize(n);
  impl->x = Matrix(n, dim_);
  for (size_t i = 0; i < n; ++i) {
    Vec z = MatVec(embed_w_.value, tree.nodes[i].features);
    for (size_t d = 0; d < dim_; ++d) z[d] += embed_b_.value.At(d, 0);
    Vec e = TanhVec(z);
    const size_t depth =
        std::min(static_cast<size_t>(impl->depths[i]), max_depth_ - 1);
    for (size_t d = 0; d < dim_; ++d) {
      impl->x.At(i, d) = e[d] + pos_.value.At(depth, d);
    }
    impl->embed[i] = std::move(e);
  }
  impl->q = MatMul(impl->x, Transpose(wq_.value));
  impl->k = MatMul(impl->x, Transpose(wk_.value));
  impl->v = MatMul(impl->x, Transpose(wv_.value));
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(dim_));
  Matrix s = MatMul(impl->q, Transpose(impl->k));
  impl->a = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    Vec row(n);
    for (size_t j = 0; j < n; ++j) row[j] = s.At(i, j) * inv_sqrt_d;
    const Vec sm = Softmax(row);
    for (size_t j = 0; j < n; ++j) impl->a.At(i, j) = sm[j];
  }
  const Matrix o = MatMul(impl->a, impl->v);
  // Residual + mean pool.
  Vec out(dim_, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim_; ++d) {
      out[d] += (impl->x.At(i, d) + o.At(i, d)) * inv_n;
    }
  }
  if (cache != nullptr) *cache = std::move(impl);
  return out;
}

void TreeAttentionEncoder::Backward(const Vec& grad_out,
                                    const FeatureTree& tree,
                                    const Cache& cache) {
  const auto& impl = static_cast<const AttnCacheImpl&>(cache);
  const size_t n = tree.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(dim_));

  // dH rows are grad_out/n each; residual: dX += dH, dO = dH.
  Matrix d_o(n, dim_);
  Matrix dx(n, dim_);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim_; ++d) {
      d_o.At(i, d) = grad_out[d] * inv_n;
      dx.At(i, d) = grad_out[d] * inv_n;
    }
  }
  // dA = dO V^T; dV = A^T dO.
  const Matrix da = MatMul(d_o, Transpose(impl.v));
  const Matrix dv = MatMul(Transpose(impl.a), d_o);
  // Softmax backward per row: dS_i = A_i ∘ (dA_i - <dA_i, A_i>).
  Matrix ds(n, n);
  for (size_t i = 0; i < n; ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < n; ++j) dot += da.At(i, j) * impl.a.At(i, j);
    for (size_t j = 0; j < n; ++j) {
      ds.At(i, j) = impl.a.At(i, j) * (da.At(i, j) - dot) * inv_sqrt_d;
    }
  }
  const Matrix dq = MatMul(ds, impl.k);
  const Matrix dk = MatMul(Transpose(ds), impl.q);
  // Parameter gradients: dWq += dQ^T X (Wq is D x D, Q = X Wq^T).
  auto accum = [&](Parameter& p, const Matrix& dmat) {
    const Matrix g = MatMul(Transpose(dmat), impl.x);
    for (size_t i = 0; i < g.rows(); ++i) {
      for (size_t j = 0; j < g.cols(); ++j) p.grad.At(i, j) += g.At(i, j);
    }
  };
  accum(wq_, dq);
  accum(wk_, dk);
  accum(wv_, dv);
  // dX += dQ Wq + dK Wk + dV Wv.
  auto add_mat = [](Matrix& dst, const Matrix& src) {
    for (size_t i = 0; i < dst.rows(); ++i) {
      for (size_t j = 0; j < dst.cols(); ++j) dst.At(i, j) += src.At(i, j);
    }
  };
  add_mat(dx, MatMul(dq, wq_.value));
  add_mat(dx, MatMul(dk, wk_.value));
  add_mat(dx, MatMul(dv, wv_.value));
  // Through positional add and tanh embedding.
  for (size_t i = 0; i < n; ++i) {
    const size_t depth =
        std::min(static_cast<size_t>(impl.depths[i]), max_depth_ - 1);
    Vec dz(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      const double dxi = dx.At(i, d);
      pos_.grad.At(depth, d) += dxi;
      const double e = impl.embed[i][d];
      dz[d] = dxi * (1.0 - e * e);
    }
    AddOuter(embed_w_.grad, dz, tree.nodes[i].features);
    for (size_t d = 0; d < dim_; ++d) embed_b_.grad.At(d, 0) += dz[d];
  }
}

}  // namespace ml
}  // namespace ml4db
