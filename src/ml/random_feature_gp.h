// Random-feature Gaussian process regressor: the lightweight, trains-in-
// seconds estimator family the paper cites for the model-efficiency open
// problem (Zhao et al., neural network gaussian process). Random Fourier
// features of an RBF kernel feed a conjugate Bayesian linear layer, giving
// an O(D^2)-per-sample exact-posterior model with calibrated uncertainty.

#ifndef ML4DB_ML_RANDOM_FEATURE_GP_H_
#define ML4DB_ML_RANDOM_FEATURE_GP_H_

#include <vector>

#include "ml/bayes_linear.h"

namespace ml4db {
namespace ml {

/// Approximate GP regression via random Fourier features.
class RandomFeatureGp {
 public:
  /// @param input_dim    raw feature dimension
  /// @param num_features number of random Fourier features D
  /// @param lengthscale  RBF kernel lengthscale
  /// @param noise_var    observation noise variance
  RandomFeatureGp(size_t input_dim, size_t num_features, double lengthscale,
                  double noise_var, uint64_t seed);

  /// Absorbs one observation.
  void Observe(const Vec& x, double y);

  /// Fits a batch (equivalent to repeated Observe; provided for clarity).
  void Fit(const std::vector<Vec>& xs, const std::vector<double>& ys);

  double PredictMean(const Vec& x) const;
  double PredictVariance(const Vec& x) const;

  /// Downweights all absorbed evidence (streaming non-stationarity knob;
  /// see BayesianLinearModel::DecayEvidence).
  void DecayEvidence(double factor) { model_.DecayEvidence(factor); }

  size_t num_observations() const { return model_.num_observations(); }

  /// Number of learned scalars (posterior mean size) — used by the
  /// model-efficiency benchmark.
  size_t NumParams() const { return model_.dim(); }

 private:
  Vec Features(const Vec& x) const;

  size_t input_dim_;
  size_t num_features_;
  Matrix omega_;  // (D x input_dim) random frequencies
  Vec phase_;     // (D) random phases
  BayesianLinearModel model_;
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_RANDOM_FEATURE_GP_H_
