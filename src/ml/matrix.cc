#include "ml/matrix.h"

#include <cmath>

namespace ml4db {
namespace ml {

Matrix Matrix::Randn(Rng& rng, size_t rows, size_t cols, double scale) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Gaussian(0.0, scale);
  }
  return m;
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

Vec MatVec(const Matrix& m, const Vec& x) {
  ML4DB_CHECK(x.size() == m.cols());
  Vec y(m.rows(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.data() + r * m.cols();
    double acc = 0.0;
    for (size_t c = 0; c < m.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vec MatTVec(const Matrix& m, const Vec& x) {
  ML4DB_CHECK(x.size() == m.rows());
  Vec y(m.cols(), 0.0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.data() + r * m.cols();
    const double xr = x[r];
    for (size_t c = 0; c < m.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

void AddOuter(Matrix& m, const Vec& y, const Vec& x, double a) {
  ML4DB_CHECK(y.size() == m.rows() && x.size() == m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    double* row = m.data() + r * m.cols();
    const double ay = a * y[r];
    for (size_t c = 0; c < m.cols(); ++c) row[c] += ay * x[c];
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ML4DB_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      double* crow = c.data() + i * c.cols();
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) t.At(c, r) = a.At(r, c);
  }
  return t;
}

Matrix Cholesky(const Matrix& a) {
  ML4DB_CHECK(a.rows() == a.cols());
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        // Tiny jitter keeps nearly-singular posterior covariances usable.
        ML4DB_CHECK_MSG(sum > -1e-9, "matrix not positive definite");
        l.At(i, i) = std::sqrt(std::max(sum, 1e-12));
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }
  return l;
}

Vec CholeskySolve(const Matrix& a, const Vec& b) {
  ML4DB_CHECK(a.rows() == b.size());
  const Matrix l = Cholesky(a);
  const size_t n = b.size();
  // Forward substitution: L y = b.
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Backward substitution: L^T x = y.
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

Vec VecAdd(const Vec& a, const Vec& b) {
  ML4DB_CHECK(a.size() == b.size());
  Vec c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Vec VecSub(const Vec& a, const Vec& b) {
  ML4DB_CHECK(a.size() == b.size());
  Vec c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Vec VecMul(const Vec& a, const Vec& b) {
  ML4DB_CHECK(a.size() == b.size());
  Vec c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

Vec VecScale(const Vec& a, double s) {
  Vec c(a.size());
  for (size_t i = 0; i < a.size(); ++i) c[i] = a[i] * s;
  return c;
}

double Dot(const Vec& a, const Vec& b) {
  ML4DB_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyInPlace(Vec& y, const Vec& x, double a) {
  ML4DB_CHECK(y.size() == x.size());
  for (size_t i = 0; i < y.size(); ++i) y[i] += a * x[i];
}

}  // namespace ml
}  // namespace ml4db
