#include "ml/qlearning.h"

#include <limits>

namespace ml4db {
namespace ml {

LinearQLearner::LinearQLearner(size_t num_actions, size_t feature_dim,
                               QLearnOptions options, uint64_t seed)
    : feature_dim_(feature_dim),
      options_(options),
      epsilon_(options.epsilon),
      rng_(seed) {
  ML4DB_CHECK(num_actions > 0 && feature_dim > 0);
  weights_.assign(num_actions, Vec(feature_dim, 0.0));
}

double LinearQLearner::Q(size_t action, const Vec& features) const {
  ML4DB_CHECK(action < weights_.size());
  ML4DB_CHECK(features.size() == feature_dim_);
  return Dot(weights_[action], features);
}

size_t LinearQLearner::GreedyAction(const std::vector<size_t>& candidates,
                                    const std::vector<Vec>& features) const {
  ML4DB_CHECK(!candidates.empty());
  ML4DB_CHECK(candidates.size() == features.size());
  size_t best = candidates[0];
  double best_q = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double q = Q(candidates[i], features[i]);
    if (q > best_q) {
      best_q = q;
      best = candidates[i];
    }
  }
  return best;
}

size_t LinearQLearner::SelectAction(const std::vector<size_t>& candidates,
                                    const std::vector<Vec>& features) {
  ML4DB_CHECK(!candidates.empty());
  if (rng_.Bernoulli(epsilon_)) {
    return candidates[rng_.NextUint64(candidates.size())];
  }
  return GreedyAction(candidates, features);
}

void LinearQLearner::Update(size_t action, const Vec& features, double reward,
                            double next_best_q) {
  const double target = reward + options_.gamma * next_best_q;
  const double td_error = target - Q(action, features);
  AxpyInPlace(weights_[action], features, options_.learning_rate * td_error);
}

void LinearQLearner::EndEpisode() {
  epsilon_ = std::max(options_.min_epsilon, epsilon_ * options_.epsilon_decay);
}

}  // namespace ml
}  // namespace ml4db
