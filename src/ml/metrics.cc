#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

namespace ml4db {
namespace ml {

double QError(double estimate, double truth) {
  const double e = std::max(estimate, 1.0);
  const double t = std::max(truth, 1.0);
  return std::max(e / t, t / e);
}

QErrorSummary SummarizeQErrors(const std::vector<double>& estimates,
                               const std::vector<double>& truths) {
  ML4DB_CHECK(estimates.size() == truths.size());
  ML4DB_CHECK(!estimates.empty());
  std::vector<double> qs(estimates.size());
  for (size_t i = 0; i < estimates.size(); ++i) {
    qs[i] = QError(estimates[i], truths[i]);
  }
  QErrorSummary s;
  s.mean = Mean(qs);
  s.median = Quantile(qs, 0.5);
  s.p90 = Quantile(qs, 0.9);
  s.p99 = Quantile(qs, 0.99);
  s.max = *std::max_element(qs.begin(), qs.end());
  return s;
}

double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths) {
  ML4DB_CHECK(estimates.size() == truths.size() && !estimates.empty());
  double acc = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    acc += std::abs(estimates[i] - truths[i]) / std::max(truths[i], 1.0);
  }
  return acc / static_cast<double>(estimates.size());
}

}  // namespace ml
}  // namespace ml4db
