#include "ml/random_feature_gp.h"

#include <cmath>

namespace ml4db {
namespace ml {

RandomFeatureGp::RandomFeatureGp(size_t input_dim, size_t num_features,
                                 double lengthscale, double noise_var,
                                 uint64_t seed)
    : input_dim_(input_dim),
      num_features_(num_features),
      omega_(num_features, input_dim),
      phase_(num_features, 0.0),
      model_(num_features, /*alpha=*/1.0, noise_var) {
  ML4DB_CHECK(lengthscale > 0.0);
  Rng rng(seed);
  for (size_t i = 0; i < num_features; ++i) {
    for (size_t j = 0; j < input_dim; ++j) {
      omega_.At(i, j) = rng.Gaussian() / lengthscale;
    }
    phase_[i] = rng.Uniform(0.0, 2.0 * M_PI);
  }
}

Vec RandomFeatureGp::Features(const Vec& x) const {
  ML4DB_CHECK(x.size() == input_dim_);
  Vec z = MatVec(omega_, x);
  const double scale = std::sqrt(2.0 / static_cast<double>(num_features_));
  for (size_t i = 0; i < num_features_; ++i) {
    z[i] = scale * std::cos(z[i] + phase_[i]);
  }
  return z;
}

void RandomFeatureGp::Observe(const Vec& x, double y) {
  model_.Observe(Features(x), y);
}

void RandomFeatureGp::Fit(const std::vector<Vec>& xs,
                          const std::vector<double>& ys) {
  ML4DB_CHECK(xs.size() == ys.size());
  for (size_t i = 0; i < xs.size(); ++i) Observe(xs[i], ys[i]);
}

double RandomFeatureGp::PredictMean(const Vec& x) const {
  return model_.PredictMean(Features(x));
}

double RandomFeatureGp::PredictVariance(const Vec& x) const {
  return model_.PredictVariance(Features(x));
}

}  // namespace ml
}  // namespace ml4db
