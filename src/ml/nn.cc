#include "ml/nn.h"

#include <algorithm>

namespace ml4db {
namespace ml {

Vec ApplyActivation(Activation act, const Vec& x) {
  Vec y(x.size());
  switch (act) {
    case Activation::kIdentity:
      y = x;
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < x.size(); ++i) y[i] = std::tanh(x[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < x.size(); ++i) y[i] = 1.0 / (1.0 + std::exp(-x[i]));
      break;
  }
  return y;
}

Vec ActivationGradFromOutput(Activation act, const Vec& y, const Vec& dy) {
  ML4DB_CHECK(y.size() == dy.size());
  Vec dx(y.size());
  switch (act) {
    case Activation::kIdentity:
      dx = dy;
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < y.size(); ++i) dx[i] = y[i] > 0.0 ? dy[i] : 0.0;
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < y.size(); ++i) dx[i] = dy[i] * (1.0 - y[i] * y[i]);
      break;
    case Activation::kSigmoid:
      for (size_t i = 0; i < y.size(); ++i) dx[i] = dy[i] * y[i] * (1.0 - y[i]);
      break;
  }
  return dx;
}

Vec Softmax(const Vec& x) {
  ML4DB_CHECK(!x.empty());
  const double mx = *std::max_element(x.begin(), x.end());
  Vec y(x.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    y[i] = std::exp(x[i] - mx);
    sum += y[i];
  }
  for (double& v : y) v /= sum;
  return y;
}

Linear::Linear(Rng& rng, size_t in_dim, size_t out_dim, Activation act)
    : act_(act) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim + out_dim));
  w_ = Parameter(Matrix::Randn(rng, out_dim, in_dim, scale));
  b_ = Parameter(Matrix::Zeros(out_dim, 1));
}

Vec Linear::Forward(const Vec& x, Cache* cache) const {
  Vec z = MatVec(w_.value, x);
  for (size_t i = 0; i < z.size(); ++i) z[i] += b_.value.At(i, 0);
  Vec y = ApplyActivation(act_, z);
  if (cache != nullptr) {
    cache->input = x;
    cache->output = y;
  }
  return y;
}

Vec Linear::Backward(const Vec& grad_out, const Cache& cache) {
  const Vec dz = ActivationGradFromOutput(act_, cache.output, grad_out);
  AddOuter(w_.grad, dz, cache.input);
  for (size_t i = 0; i < dz.size(); ++i) b_.grad.At(i, 0) += dz[i];
  return MatTVec(w_.value, dz);
}

Mlp::Mlp(Rng& rng, const std::vector<size_t>& dims, Activation hidden_act) {
  ML4DB_CHECK(dims.size() >= 2);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(rng, dims[i], dims[i + 1],
                         last ? Activation::kIdentity : hidden_act);
  }
}

Vec Mlp::Forward(const Vec& x, Cache* cache) const {
  if (cache != nullptr) cache->layers.resize(layers_.size());
  Vec h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h, cache != nullptr ? &cache->layers[i] : nullptr);
  }
  return h;
}

Vec Mlp::Backward(const Vec& grad_out, const Cache& cache) {
  ML4DB_CHECK(cache.layers.size() == layers_.size());
  Vec g = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i].Backward(g, cache.layers[i]);
  }
  return g;
}

std::vector<Parameter*> Mlp::Params() {
  std::vector<Parameter*> out;
  for (Linear& l : layers_) {
    for (Parameter* p : l.Params()) out.push_back(p);
  }
  return out;
}

double MseLoss(const Vec& pred, const Vec& target, Vec* grad) {
  ML4DB_CHECK(pred.size() == target.size() && !pred.empty());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  grad->assign(pred.size(), 0.0);
  double loss = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    loss += 0.5 * d * d * inv_n;
    (*grad)[i] = d * inv_n;
  }
  return loss;
}

double HuberLoss(const Vec& pred, const Vec& target, double delta, Vec* grad) {
  ML4DB_CHECK(pred.size() == target.size() && !pred.empty());
  const double inv_n = 1.0 / static_cast<double>(pred.size());
  grad->assign(pred.size(), 0.0);
  double loss = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    if (std::abs(d) <= delta) {
      loss += 0.5 * d * d * inv_n;
      (*grad)[i] = d * inv_n;
    } else {
      loss += delta * (std::abs(d) - 0.5 * delta) * inv_n;
      (*grad)[i] = (d > 0 ? delta : -delta) * inv_n;
    }
  }
  return loss;
}

double BceWithLogitsLoss(double logit, double label, double* grad) {
  const double p = 1.0 / (1.0 + std::exp(-logit));
  *grad = p - label;
  const double eps = 1e-12;
  return -(label * std::log(p + eps) + (1.0 - label) * std::log(1.0 - p + eps));
}

double PairwiseRankLoss(double score_better, double score_worse,
                        double* grad_better, double* grad_worse) {
  // Logistic loss on the margin (worse - better): minimized when the better
  // plan's score (cost) is lower.
  const double margin = score_worse - score_better;
  const double p = 1.0 / (1.0 + std::exp(-margin));
  // loss = -log(sigmoid(margin)); d/dmargin = p - 1.
  const double dmargin = p - 1.0;
  *grad_worse = dmargin;
  *grad_better = -dmargin;
  return -std::log(std::max(p, 1e-12));
}

void Optimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (Parameter* p : params_) total += p->grad.SquaredNorm();
  const double norm = std::sqrt(total);
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (Parameter* p : params_) {
    for (size_t i = 0; i < p->grad.size(); ++i) p->grad.data()[i] *= scale;
  }
}

void Sgd::Step() {
  for (Parameter* p : params_) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      double g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      p->value.data()[i] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter* p = params_[pi];
    for (size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad.data()[i] + weight_decay_ * p->value.data()[i];
      double& m = m_[pi].data()[i];
      double& v = v_[pi].data()[i];
      m = beta1_ * m + (1.0 - beta1_) * g;
      v = beta2_ * v + (1.0 - beta2_) * g * g;
      const double mhat = m / bc1;
      const double vhat = v / bc2;
      p->value.data()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void StandardScaler::Fit(const std::vector<Vec>& rows) {
  ML4DB_CHECK(!rows.empty());
  const size_t d = rows[0].size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 0.0);
  for (const Vec& r : rows) {
    ML4DB_CHECK(r.size() == d);
    for (size_t i = 0; i < d; ++i) mean_[i] += r[i];
  }
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (double& m : mean_) m *= inv_n;
  Vec var(d, 0.0);
  for (const Vec& r : rows) {
    for (size_t i = 0; i < d; ++i) {
      const double c = r[i] - mean_[i];
      var[i] += c * c;
    }
  }
  for (size_t i = 0; i < d; ++i) {
    const double sd = std::sqrt(var[i] * inv_n);
    inv_std_[i] = sd > 1e-9 ? 1.0 / sd : 0.0;
  }
}

Vec StandardScaler::Transform(const Vec& x) const {
  ML4DB_CHECK(x.size() == mean_.size());
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = (x[i] - mean_[i]) * inv_std_[i];
  return y;
}

}  // namespace ml
}  // namespace ml4db
