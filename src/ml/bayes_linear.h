// Bayesian linear regression with a conjugate Gaussian prior, the model
// behind Bao-style Thompson sampling (paper §3.2, "Bandit Optimizer") and
// the lightweight cardinality estimators (§3.3 "Model Efficiency").

#ifndef ML4DB_ML_BAYES_LINEAR_H_
#define ML4DB_ML_BAYES_LINEAR_H_

#include <vector>

#include "ml/matrix.h"

namespace ml4db {
namespace ml {

/// Bayesian linear regression y ~ N(w^T x, sigma^2) with prior
/// w ~ N(0, alpha^{-1} I). Maintains the posterior in sufficient-statistic
/// form (X^T X, X^T y) so updates are O(d^2) per observation and the
/// posterior can be recomputed exactly at any time.
class BayesianLinearModel {
 public:
  /// @param dim       feature dimension (callers append a bias feature
  ///                  themselves if wanted)
  /// @param alpha     prior precision (larger = stronger shrinkage to 0)
  /// @param noise_var observation noise variance sigma^2
  BayesianLinearModel(size_t dim, double alpha = 1.0, double noise_var = 1.0);

  /// Adds one (x, y) observation.
  void Observe(const Vec& x, double y);

  /// Number of observations absorbed so far.
  size_t num_observations() const { return n_; }

  size_t dim() const { return dim_; }

  /// Posterior mean prediction at x.
  double PredictMean(const Vec& x) const;

  /// Posterior predictive variance at x (includes observation noise).
  double PredictVariance(const Vec& x) const;

  /// Draws one weight vector from the posterior and returns its prediction
  /// at x — the Thompson-sampling primitive.
  double SamplePrediction(const Vec& x, Rng& rng) const;

  /// Draws a full weight vector from the posterior (useful when scoring
  /// many arms under one coherent sample).
  Vec SampleWeights(Rng& rng) const;

  /// Posterior mean weights.
  Vec MeanWeights() const;

  /// Downweights all absorbed evidence by `factor` in (0, 1]; used to adapt
  /// to non-stationary workloads (Bao retrains on a sliding window; decay
  /// is the streaming equivalent).
  void DecayEvidence(double factor);

 private:
  void Refresh() const;  // recompute posterior from sufficient stats

  size_t dim_;
  double alpha_;
  double noise_var_;
  size_t n_ = 0;
  Matrix xtx_;  // running X^T X
  Vec xty_;     // running X^T y

  // Posterior cache (lazily recomputed after updates): the Cholesky factor
  // of the posterior *precision* plus the mean; variance and Thompson
  // samples come from triangular solves against it (O(d^2) per query).
  mutable bool dirty_ = true;
  mutable Vec mean_;
  mutable Matrix prec_chol_;
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_BAYES_LINEAR_H_
