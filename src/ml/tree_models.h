// Tree-structured encoders used for query plan representation (paper §3.1):
// DFS-flattened LSTM [AVGDL], TreeCNN [BAO/NEO], child-sum TreeLSTM
// [E2E-Cost/RTOS], and a single-block tree attention encoder
// [QueryFormer-lite]. Each maps a FeatureTree (a plan whose nodes carry
// fixed-size feature vectors) to one fixed-size embedding and supports
// manual backpropagation of a gradient at that embedding.

#ifndef ML4DB_ML_TREE_MODELS_H_
#define ML4DB_ML_TREE_MODELS_H_

#include <memory>
#include <vector>

#include "ml/nn.h"

namespace ml4db {
namespace ml {

/// A tree whose nodes carry dense feature vectors. Node 0 is the root;
/// children indices always point to later entries (topological order),
/// which every encoder relies on.
struct FeatureTree {
  struct Node {
    Vec features;
    std::vector<int> children;
  };
  std::vector<Node> nodes;

  size_t size() const { return nodes.size(); }

  /// Depth of each node (root = 0).
  std::vector<int> Depths() const;

  /// Node indices in DFS pre-order starting at the root.
  std::vector<int> DfsOrder() const;

  /// Validates the topological-order invariant (children after parents).
  bool IsTopologicallyOrdered() const;
};

/// Common interface for plan-tree encoders.
class TreeEncoder : public Module {
 public:
  /// Opaque per-call cache; create one per Encode and pass it to Backward.
  struct Cache {
    virtual ~Cache() = default;
  };

  ~TreeEncoder() override = default;

  /// Embedding dimension of the output vector.
  virtual size_t OutputDim() const = 0;

  /// Encodes a tree. When `cache` is non-null it receives state required by
  /// Backward.
  virtual Vec Encode(const FeatureTree& tree,
                     std::unique_ptr<Cache>* cache) const = 0;

  /// Convenience inference entry point.
  Vec Embed(const FeatureTree& tree) const { return Encode(tree, nullptr); }

  /// Backprop of d(loss)/d(embedding) into parameter gradients.
  virtual void Backward(const Vec& grad_out, const FeatureTree& tree,
                        const Cache& cache) = 0;
};

// ---------------------------------------------------------------------------
// LSTM cell (shared by DfsLstmEncoder and reused in sequential models).
// ---------------------------------------------------------------------------

/// A standard LSTM cell with manual backprop. Gate order in the stacked
/// parameter matrices is [i, f, o, g].
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(Rng& rng, size_t input_dim, size_t hidden_dim);

  struct StepCache {
    Vec x, h_prev, c_prev;
    Vec i, f, o, g, c, h, tanh_c;
  };

  /// One step: consumes (x, h_prev, c_prev), produces (h, c).
  void Forward(const Vec& x, const Vec& h_prev, const Vec& c_prev, Vec* h,
               Vec* c, StepCache* cache) const;

  /// Backprop one step. dh/dc are gradients flowing into this step's
  /// outputs; on return *dh_prev/*dc_prev/*dx carry gradients for the
  /// inputs.
  void Backward(const Vec& dh, const Vec& dc, const StepCache& cache,
                Vec* dx, Vec* dh_prev, Vec* dc_prev);

  std::vector<Parameter*> Params() { return {&w_, &u_, &b_}; }
  size_t hidden_dim() const { return hidden_; }
  size_t input_dim() const { return w_.value.cols(); }

 private:
  size_t hidden_ = 0;
  Parameter w_;  // (4H x I)
  Parameter u_;  // (4H x H)
  Parameter b_;  // (4H x 1)
};

/// Flattens the plan via DFS pre-order and runs an LSTM over the sequence;
/// the final hidden state is the plan embedding (AVGDL-style).
class DfsLstmEncoder : public TreeEncoder {
 public:
  DfsLstmEncoder(Rng& rng, size_t input_dim, size_t hidden_dim);

  size_t OutputDim() const override { return cell_.hidden_dim(); }
  Vec Encode(const FeatureTree& tree,
             std::unique_ptr<Cache>* cache) const override;
  void Backward(const Vec& grad_out, const FeatureTree& tree,
                const Cache& cache) override;
  std::vector<Parameter*> Params() override { return cell_.Params(); }

 private:
  struct LstmCacheImpl;
  mutable LstmCell cell_;
};

// ---------------------------------------------------------------------------
// Child-sum TreeLSTM (Tai et al. 2015), as used by E2E-Cost and RTOS.
// ---------------------------------------------------------------------------

class TreeLstmEncoder : public TreeEncoder {
 public:
  TreeLstmEncoder(Rng& rng, size_t input_dim, size_t hidden_dim);

  size_t OutputDim() const override { return hidden_; }
  Vec Encode(const FeatureTree& tree,
             std::unique_ptr<Cache>* cache) const override;
  void Backward(const Vec& grad_out, const FeatureTree& tree,
                const Cache& cache) override;
  std::vector<Parameter*> Params() override {
    return {&wi_, &ui_, &bi_, &wf_, &uf_, &bf_,
            &wo_, &uo_, &bo_, &wu_, &uu_, &bu_};
  }

 private:
  struct NodeCache;
  struct TreeCacheImpl;

  void ForwardNode(const FeatureTree& tree, int idx,
                   std::vector<NodeCache>& caches) const;

  size_t hidden_ = 0;
  Parameter wi_, ui_, bi_;  // input gate
  Parameter wf_, uf_, bf_;  // forget gate (per child, shared weights)
  Parameter wo_, uo_, bo_;  // output gate
  Parameter wu_, uu_, bu_;  // candidate
};

// ---------------------------------------------------------------------------
// TreeCNN with triangular (parent, left-child, right-child) filters and
// global max pooling (Mou et al. 2016; used by NEO and BAO).
// ---------------------------------------------------------------------------

class TreeCnnEncoder : public TreeEncoder {
 public:
  /// `filters` is the number of convolution filters = output dimension.
  TreeCnnEncoder(Rng& rng, size_t input_dim, size_t filters);

  size_t OutputDim() const override { return filters_; }
  Vec Encode(const FeatureTree& tree,
             std::unique_ptr<Cache>* cache) const override;
  void Backward(const Vec& grad_out, const FeatureTree& tree,
                const Cache& cache) override;
  std::vector<Parameter*> Params() override {
    return {&wp_, &wl_, &wr_, &b_};
  }

 private:
  struct CnnCacheImpl;

  size_t filters_ = 0;
  Parameter wp_, wl_, wr_;  // (F x I) each
  Parameter b_;             // (F x 1)
};

// ---------------------------------------------------------------------------
// Tree attention (QueryFormer-lite): node embedding + learned depth
// positional encoding, one self-attention block with residual, mean pool.
// ---------------------------------------------------------------------------

class TreeAttentionEncoder : public TreeEncoder {
 public:
  TreeAttentionEncoder(Rng& rng, size_t input_dim, size_t model_dim,
                       size_t max_depth = 32);

  size_t OutputDim() const override { return dim_; }
  Vec Encode(const FeatureTree& tree,
             std::unique_ptr<Cache>* cache) const override;
  void Backward(const Vec& grad_out, const FeatureTree& tree,
                const Cache& cache) override;
  std::vector<Parameter*> Params() override {
    return {&embed_w_, &embed_b_, &pos_, &wq_, &wk_, &wv_};
  }

 private:
  struct AttnCacheImpl;

  size_t dim_ = 0;
  size_t max_depth_ = 0;
  Parameter embed_w_;  // (D x I)
  Parameter embed_b_;  // (D x 1)
  Parameter pos_;      // (max_depth x D), row = depth embedding
  Parameter wq_, wk_, wv_;  // (D x D)
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_TREE_MODELS_H_
