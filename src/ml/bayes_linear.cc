#include "ml/bayes_linear.h"

namespace ml4db {
namespace ml {

namespace {

// Solves L y = b (forward substitution) for lower-triangular L.
Vec ForwardSolve(const Matrix& l, const Vec& b) {
  const size_t n = b.size();
  Vec y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  return y;
}

// Solves L^T x = b (backward substitution) for lower-triangular L.
Vec BackwardSolve(const Matrix& l, const Vec& b) {
  const size_t n = b.size();
  Vec x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = b[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l.At(k, ii) * x[k];
    x[ii] = sum / l.At(ii, ii);
  }
  return x;
}

}  // namespace

BayesianLinearModel::BayesianLinearModel(size_t dim, double alpha,
                                         double noise_var)
    : dim_(dim),
      alpha_(alpha),
      noise_var_(noise_var),
      xtx_(dim, dim),
      xty_(dim, 0.0) {
  ML4DB_CHECK(dim > 0);
  ML4DB_CHECK(alpha > 0.0 && noise_var > 0.0);
}

void BayesianLinearModel::Observe(const Vec& x, double y) {
  ML4DB_CHECK(x.size() == dim_);
  AddOuter(xtx_, x, x);
  AxpyInPlace(xty_, x, y);
  ++n_;
  dirty_ = true;
}

void BayesianLinearModel::DecayEvidence(double factor) {
  ML4DB_CHECK(factor > 0.0 && factor <= 1.0);
  for (size_t i = 0; i < xtx_.size(); ++i) xtx_.data()[i] *= factor;
  for (double& v : xty_) v *= factor;
  dirty_ = true;
}

void BayesianLinearModel::Refresh() const {
  if (!dirty_) return;
  // Posterior precision A = alpha I + X^T X / sigma^2. Everything else is
  // derived from its Cholesky factor:
  //   mean        = A^{-1} X^T y / sigma^2           (two triangular solves)
  //   var(x)      = x^T A^{-1} x = ||L^{-1} x||^2    (one forward solve)
  //   sample      = mean + L^{-T} z, z ~ N(0, I)     (one backward solve)
  Matrix a(dim_, dim_);
  const double inv_noise = 1.0 / noise_var_;
  for (size_t i = 0; i < dim_; ++i) {
    for (size_t j = 0; j < dim_; ++j) {
      a.At(i, j) = xtx_.At(i, j) * inv_noise + (i == j ? alpha_ : 0.0);
    }
  }
  prec_chol_ = Cholesky(a);
  mean_ = BackwardSolve(prec_chol_,
                        ForwardSolve(prec_chol_, VecScale(xty_, inv_noise)));
  dirty_ = false;
}

double BayesianLinearModel::PredictMean(const Vec& x) const {
  ML4DB_CHECK(x.size() == dim_);
  Refresh();
  return Dot(mean_, x);
}

double BayesianLinearModel::PredictVariance(const Vec& x) const {
  ML4DB_CHECK(x.size() == dim_);
  Refresh();
  const Vec y = ForwardSolve(prec_chol_, x);
  return Dot(y, y) + noise_var_;
}

Vec BayesianLinearModel::SampleWeights(Rng& rng) const {
  Refresh();
  Vec z(dim_);
  for (double& v : z) v = rng.Gaussian();
  // cov = A^{-1} = L^{-T} L^{-1}, so mean + L^{-T} z has covariance A^{-1}.
  Vec w = BackwardSolve(prec_chol_, z);
  AxpyInPlace(w, mean_, 1.0);
  return w;
}

double BayesianLinearModel::SamplePrediction(const Vec& x, Rng& rng) const {
  ML4DB_CHECK(x.size() == dim_);
  return Dot(SampleWeights(rng), x);
}

Vec BayesianLinearModel::MeanWeights() const {
  Refresh();
  return mean_;
}

}  // namespace ml
}  // namespace ml4db
