// Dense row-major matrix of doubles plus the linear-algebra kernels the
// ml module needs (matmul, transpose, Cholesky). Sized for small models
// (hidden dims of tens), not BLAS-scale workloads.

#ifndef ML4DB_ML_MATRIX_H_
#define ML4DB_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace ml4db {
namespace ml {

/// Vector of doubles; the element type used throughout the ml module.
using Vec = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Gaussian init with standard deviation `scale` (e.g. Xavier/He scale
  /// computed by the caller).
  static Matrix Randn(Rng& rng, size_t rows, size_t cols, double scale);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& At(size_t r, size_t c) {
    ML4DB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    ML4DB_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Frobenius-norm squared; used for weight-decay and gradient clipping.
  double SquaredNorm() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// y = M x (matrix–vector product). x.size() must equal M.cols().
Vec MatVec(const Matrix& m, const Vec& x);

/// y = M^T x. x.size() must equal M.rows().
Vec MatTVec(const Matrix& m, const Vec& x);

/// M += a * outer(y, x), i.e. M[r][c] += a * y[r] * x[c]. The shape of the
/// rank-1 update used by every backward pass: dW += dy x^T.
void AddOuter(Matrix& m, const Vec& y, const Vec& x, double a = 1.0);

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// A^T.
Matrix Transpose(const Matrix& a);

/// In-place Cholesky decomposition of a symmetric positive-definite matrix;
/// returns lower-triangular L with A = L L^T. Aborts (CHECK) if A is not
/// positive definite beyond a small jitter.
Matrix Cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
Vec CholeskySolve(const Matrix& a, const Vec& b);

/// Elementwise vector helpers.
Vec VecAdd(const Vec& a, const Vec& b);
Vec VecSub(const Vec& a, const Vec& b);
Vec VecMul(const Vec& a, const Vec& b);
Vec VecScale(const Vec& a, double s);
double Dot(const Vec& a, const Vec& b);
void AxpyInPlace(Vec& y, const Vec& x, double a);  // y += a * x

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_MATRIX_H_
