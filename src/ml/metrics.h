// Evaluation metrics used across ML4DB experiments: q-error for
// cardinality/cost estimation, regret for bandit optimizers, ranking
// quality for plan selection.

#ifndef ML4DB_ML_METRICS_H_
#define ML4DB_ML_METRICS_H_

#include <vector>

#include "common/math_util.h"

namespace ml4db {
namespace ml {

/// q-error of a single estimate: max(est/true, true/est), with both sides
/// floored at 1 to avoid division blowups. The standard cardinality
/// estimation metric.
double QError(double estimate, double truth);

/// Aggregated q-error quantiles over a test set.
struct QErrorSummary {
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

QErrorSummary SummarizeQErrors(const std::vector<double>& estimates,
                               const std::vector<double>& truths);

/// Mean relative error |est - true| / max(true, 1).
double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths);

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_METRICS_H_
