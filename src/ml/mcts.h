// Monte Carlo Tree Search (UCT), the "lightweight reinforcement learning"
// engine behind PLATON's learned R-tree packing policy (paper §3.2,
// ML-enhanced bulk-loading). Header-only and generic over an environment.
//
// The environment type E must provide:
//   using State = ...;                    // copyable
//   std::vector<int> Actions(const State&) const;   // empty == terminal
//   State Apply(const State&, int action) const;
//   double Rollout(const State&, Rng&) const;       // reward, higher better
//
// Rewards should be (roughly) in [0, 1] for the default exploration
// constant to be sensible.

#ifndef ML4DB_ML_MCTS_H_
#define ML4DB_ML_MCTS_H_

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace ml4db {
namespace ml {

/// Configuration for an MCTS search.
struct MctsOptions {
  int iterations = 200;          ///< simulations per Search() call
  double exploration = 1.0;      ///< UCT exploration constant c
  int max_rollout_depth = 64;    ///< safety bound inside Rollout loops
};

/// UCT search over an environment E (see file comment for the concept).
template <typename E>
class Mcts {
 public:
  using State = typename E::State;

  Mcts(const E* env, MctsOptions options, uint64_t seed)
      : env_(env), options_(options), rng_(seed) {
    ML4DB_CHECK(env != nullptr);
    ML4DB_CHECK(options.iterations > 0);
  }

  /// Runs the configured number of simulations from `root` and returns the
  /// most-visited action. `root` must be non-terminal.
  int Search(const State& root) {
    auto root_node = std::make_unique<Node>();
    root_node->state = root;
    root_node->untried = env_->Actions(root);
    ML4DB_CHECK_MSG(!root_node->untried.empty(),
                    "MCTS called on a terminal state");
    for (int it = 0; it < options_.iterations; ++it) {
      Simulate(root_node.get());
    }
    int best_action = root_node->children.front()->action;
    int best_visits = -1;
    for (const auto& child : root_node->children) {
      if (child->visits > best_visits) {
        best_visits = child->visits;
        best_action = child->action;
      }
    }
    return best_action;
  }

  /// Mean value of the action chosen by the last Search at the root; useful
  /// for diagnostics.
  double last_root_value() const { return last_root_value_; }

 private:
  struct Node {
    State state;
    int action = -1;  // action that led here from the parent
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
    std::vector<int> untried;
    int visits = 0;
    double total_reward = 0.0;
  };

  void Simulate(Node* root) {
    // Selection.
    Node* node = root;
    while (node->untried.empty() && !node->children.empty()) {
      node = SelectUct(node);
    }
    // Expansion.
    if (!node->untried.empty()) {
      const size_t pick = rng_.NextUint64(node->untried.size());
      const int action = node->untried[pick];
      node->untried[pick] = node->untried.back();
      node->untried.pop_back();
      auto child = std::make_unique<Node>();
      child->state = env_->Apply(node->state, action);
      child->action = action;
      child->parent = node;
      child->untried = env_->Actions(child->state);
      node->children.push_back(std::move(child));
      node = node->children.back().get();
    }
    // Rollout.
    const double reward = env_->Rollout(node->state, rng_);
    // Backpropagation.
    for (Node* n = node; n != nullptr; n = n->parent) {
      n->visits += 1;
      n->total_reward += reward;
    }
    last_root_value_ = root->total_reward / std::max(root->visits, 1);
  }

  Node* SelectUct(Node* node) {
    Node* best = nullptr;
    double best_score = -std::numeric_limits<double>::infinity();
    const double log_n = std::log(static_cast<double>(node->visits) + 1.0);
    for (const auto& child : node->children) {
      const double mean = child->visits > 0
                              ? child->total_reward / child->visits
                              : std::numeric_limits<double>::infinity();
      const double ucb =
          child->visits > 0
              ? mean + options_.exploration *
                           std::sqrt(log_n / static_cast<double>(child->visits))
              : std::numeric_limits<double>::infinity();
      if (ucb > best_score) {
        best_score = ucb;
        best = child.get();
      }
    }
    ML4DB_DCHECK(best != nullptr);
    return best;
  }

  const E* env_;
  MctsOptions options_;
  Rng rng_;
  double last_root_value_ = 0.0;
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_MCTS_H_
