// Q-learning with linear function approximation, the learning engine of
// the RLR-tree (paper §3.2, ML-enhanced insertion): Q(s, a) = w_a · φ(s, a)
// trained with epsilon-greedy exploration and TD(0) updates.

#ifndef ML4DB_ML_QLEARNING_H_
#define ML4DB_ML_QLEARNING_H_

#include <vector>

#include "ml/matrix.h"

namespace ml4db {
namespace ml {

/// Configuration for LinearQLearner.
struct QLearnOptions {
  double learning_rate = 0.01;
  double gamma = 0.9;          ///< discount factor
  double epsilon = 0.2;        ///< exploration rate during training
  double epsilon_decay = 1.0;  ///< multiplicative decay per episode
  double min_epsilon = 0.01;
};

/// Linear Q-function over a fixed action set. Actions share the feature
/// map φ(s, a) supplied by the caller per (state, action) pair; each action
/// keeps its own weight vector.
class LinearQLearner {
 public:
  LinearQLearner(size_t num_actions, size_t feature_dim, QLearnOptions options,
                 uint64_t seed);

  size_t num_actions() const { return weights_.size(); }
  size_t feature_dim() const { return feature_dim_; }

  /// Q-value of one action.
  double Q(size_t action, const Vec& features) const;

  /// Greedy action over the candidate set (indices into the action space);
  /// `features[i]` are φ(s, candidate i).
  size_t GreedyAction(const std::vector<size_t>& candidates,
                      const std::vector<Vec>& features) const;

  /// Epsilon-greedy action during training.
  size_t SelectAction(const std::vector<size_t>& candidates,
                      const std::vector<Vec>& features);

  /// TD(0) update for a transition: (s, a) with reward r; `next_best_q` is
  /// max_a' Q(s', a') or 0 for terminal states.
  void Update(size_t action, const Vec& features, double reward,
              double next_best_q);

  /// Call at episode boundaries to decay exploration.
  void EndEpisode();

  double epsilon() const { return epsilon_; }

 private:
  size_t feature_dim_;
  QLearnOptions options_;
  double epsilon_;
  std::vector<Vec> weights_;  // one weight vector per action
  Rng rng_;
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_QLEARNING_H_
