// Neural-network building blocks with manual backpropagation.
//
// Models in this module operate on single samples (Vec in, Vec out);
// mini-batching is done by accumulating gradients across samples before an
// optimizer step. This keeps tree-structured backprop (TreeLSTM/TreeCNN)
// simple and is plenty fast at the model sizes ML4DB systems use.

#ifndef ML4DB_ML_NN_H_
#define ML4DB_ML_NN_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace ml4db {
namespace ml {

/// A trainable tensor: value plus accumulated gradient.
struct Parameter {
  Matrix value;
  Matrix grad;

  Parameter() = default;
  explicit Parameter(Matrix v) : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0); }
  size_t size() const { return value.size(); }
};

/// Interface implemented by every trainable model so optimizers can walk
/// its parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, in a stable order.
  virtual std::vector<Parameter*> Params() = 0;

  /// Sets every parameter gradient to zero.
  void ZeroGrad() {
    for (Parameter* p : Params()) p->ZeroGrad();
  }

  /// Total number of trainable scalars; the "model size" metric used by the
  /// model-efficiency experiments.
  size_t NumParams() {
    size_t n = 0;
    for (Parameter* p : Params()) n += p->size();
    return n;
  }
};

/// Supported elementwise nonlinearities.
enum class Activation { kIdentity, kRelu, kTanh, kSigmoid };

/// Applies an activation elementwise.
Vec ApplyActivation(Activation act, const Vec& x);

/// Derivative of the activation as a function of its *output* y (all four
/// supported activations admit this form).
Vec ActivationGradFromOutput(Activation act, const Vec& y, const Vec& dy);

/// Numerically-stable softmax.
Vec Softmax(const Vec& x);

/// Fully-connected layer y = act(W x + b).
class Linear {
 public:
  Linear() = default;

  /// Xavier-initialized layer.
  Linear(Rng& rng, size_t in_dim, size_t out_dim,
         Activation act = Activation::kIdentity);

  /// Forward pass; caches the input and pre-activation output internally
  /// when `cache` is non-null (required before Backward on that cache).
  struct Cache {
    Vec input;
    Vec output;  // post-activation
  };
  Vec Forward(const Vec& x, Cache* cache) const;

  /// Backward pass: consumes d(loss)/d(output), accumulates dW/db, returns
  /// d(loss)/d(input).
  Vec Backward(const Vec& grad_out, const Cache& cache);

  std::vector<Parameter*> Params() { return {&w_, &b_}; }

  size_t in_dim() const { return w_.value.cols(); }
  size_t out_dim() const { return w_.value.rows(); }

 private:
  Parameter w_;
  Parameter b_;
  Activation act_ = Activation::kIdentity;
};

/// Multi-layer perceptron: a stack of Linear layers with a shared hidden
/// activation and identity output.
class Mlp : public Module {
 public:
  Mlp() = default;

  /// dims = {in, hidden..., out}.
  Mlp(Rng& rng, const std::vector<size_t>& dims,
      Activation hidden_act = Activation::kRelu);

  struct Cache {
    std::vector<Linear::Cache> layers;
  };

  Vec Forward(const Vec& x, Cache* cache) const;
  /// Convenience forward without gradient caching (inference).
  Vec Predict(const Vec& x) const { return Forward(x, nullptr); }

  /// Backprop; returns gradient w.r.t. the input.
  Vec Backward(const Vec& grad_out, const Cache& cache);

  std::vector<Parameter*> Params() override;

  size_t in_dim() const { return layers_.front().in_dim(); }
  size_t out_dim() const { return layers_.back().out_dim(); }

 private:
  std::vector<Linear> layers_;
};

// ---------------------------------------------------------------------------
// Losses. Each returns the loss value and writes d(loss)/d(pred) to *grad.
// ---------------------------------------------------------------------------

/// 0.5 * ||pred - target||^2 (mean over dimensions).
double MseLoss(const Vec& pred, const Vec& target, Vec* grad);

/// Huber loss with threshold delta; robust to latency outliers.
double HuberLoss(const Vec& pred, const Vec& target, double delta, Vec* grad);

/// Binary cross-entropy on a scalar logit (pred is pre-sigmoid).
double BceWithLogitsLoss(double logit, double label, double* grad);

/// Pairwise ranking (logistic) loss on a pair of scalar scores: encourages
/// score_better < score_worse by margin in log-odds. Returns loss; writes
/// gradients for both scores.
double PairwiseRankLoss(double score_better, double score_worse,
                        double* grad_better, double* grad_worse);

// ---------------------------------------------------------------------------
// Optimizers. They operate on the Parameter list of a Module; call
// ZeroGrad() before accumulating the next batch.
// ---------------------------------------------------------------------------

/// Optimizer interface.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients (does not zero them).
  virtual void Step() = 0;

  /// Clips the global gradient norm to `max_norm`; call before Step().
  void ClipGradNorm(double max_norm);

 protected:
  std::vector<Parameter*> params_;
};

/// Plain SGD with optional weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double weight_decay = 0.0)
      : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}
  void Step() override;

 private:
  double lr_;
  double weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

/// Standardizes features to zero mean / unit variance; fit on training data,
/// then applied everywhere. Constant features map to zero.
class StandardScaler {
 public:
  void Fit(const std::vector<Vec>& rows);
  Vec Transform(const Vec& x) const;
  bool fitted() const { return !mean_.empty(); }
  size_t dim() const { return mean_.size(); }

 private:
  Vec mean_;
  Vec inv_std_;
};

}  // namespace ml
}  // namespace ml4db

#endif  // ML4DB_ML_NN_H_
