#include "drift/detectors.h"

#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace drift {

bool KsDriftDetector::Observe(double value) {
  if (reference_.size() < window_) {
    reference_.push_back(value);
    return false;
  }
  recent_.push_back(value);
  if (recent_.size() > window_) recent_.pop_front();
  if (recent_.size() < window_) return false;
  const double distance = Distance();
  if (distance > threshold_) {
    reference_.assign(recent_.begin(), recent_.end());
    recent_.clear();
    ++drift_count_;
    static obs::Counter* drifts = obs::GetCounter("ml4db.drift.ks_drifts");
    drifts->Inc();
    obs::PublishEvent(obs::EventKind::kDrift, "drift.ks",
                      "ks_statistic above threshold", distance);
    return true;
  }
  return false;
}

double KsDriftDetector::Distance() const {
  if (reference_.size() < window_ || recent_.size() < window_) return 0.0;
  return KsStatistic(reference_,
                     std::vector<double>(recent_.begin(), recent_.end()));
}

bool MixDriftDetector::Observe(size_t template_id) {
  ML4DB_CHECK(template_id < num_templates_);
  if (reference_counts_.empty()) {
    reference_counts_.assign(num_templates_, 0.0);
    reference_fill_ = 0;
  }
  if (reference_fill_ < window_) {
    reference_counts_[template_id] += 1.0;
    ++reference_fill_;
    return false;
  }
  recent_.push_back(template_id);
  if (recent_.size() > window_) recent_.pop_front();
  if (recent_.size() < window_) return false;
  const double divergence = Divergence();
  if (divergence > threshold_) {
    reference_counts_.assign(num_templates_, 0.0);
    for (size_t t : recent_) reference_counts_[t] += 1.0;
    recent_.clear();
    ++drift_count_;
    static obs::Counter* drifts = obs::GetCounter("ml4db.drift.mix_drifts");
    drifts->Inc();
    obs::PublishEvent(obs::EventKind::kDrift, "drift.mix",
                      "js_divergence above threshold", divergence);
    return true;
  }
  return false;
}

double MixDriftDetector::Divergence() const {
  if (recent_.size() < window_ || reference_counts_.empty()) return 0.0;
  std::vector<double> recent_counts(num_templates_, 0.0);
  for (size_t t : recent_) recent_counts[t] += 1.0;
  // Laplace smoothing keeps JS finite on unseen templates.
  std::vector<double> ref = reference_counts_;
  for (size_t i = 0; i < num_templates_; ++i) {
    ref[i] += 0.5;
    recent_counts[i] += 0.5;
  }
  return JensenShannon(ref, recent_counts);
}

}  // namespace drift
}  // namespace ml4db
