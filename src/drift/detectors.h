// Data & workload drift detection (paper §3.3, open problem 2). Detectors
// compare a reference window against a recent window: KS statistic for
// continuous feature/key distributions (data drift), Jensen–Shannon
// divergence over template mixes (workload drift).

#ifndef ML4DB_DRIFT_DETECTORS_H_
#define ML4DB_DRIFT_DETECTORS_H_

#include <deque>
#include <vector>

#include "common/math_util.h"

namespace ml4db {
namespace drift {

/// Sliding-window KS drift detector over a scalar stream.
class KsDriftDetector {
 public:
  /// @param window     observations per window
  /// @param threshold  KS statistic above which drift is flagged
  KsDriftDetector(size_t window, double threshold)
      : window_(window), threshold_(threshold) {
    ML4DB_CHECK(window >= 8);
  }

  /// Feeds one observation; returns true when drift is detected (the
  /// recent window then becomes the new reference).
  bool Observe(double value);

  /// Current KS distance between reference and recent windows (0 until
  /// both windows are full).
  double Distance() const;

  bool HasReference() const { return reference_.size() == window_; }
  size_t drift_count() const { return drift_count_; }

 private:
  size_t window_;
  double threshold_;
  std::vector<double> reference_;
  std::deque<double> recent_;
  size_t drift_count_ = 0;
};

/// Workload-mix drift detector over categorical template ids.
class MixDriftDetector {
 public:
  /// @param num_templates categorical domain size
  /// @param window        observations per window
  /// @param threshold     JS divergence (nats) above which drift is flagged
  MixDriftDetector(size_t num_templates, size_t window, double threshold)
      : num_templates_(num_templates), window_(window), threshold_(threshold) {
    ML4DB_CHECK(num_templates >= 1 && window >= 8);
  }

  /// Feeds one template observation; returns true on detected drift.
  bool Observe(size_t template_id);

  double Divergence() const;
  size_t drift_count() const { return drift_count_; }

 private:
  size_t num_templates_;
  size_t window_;
  double threshold_;
  std::vector<double> reference_counts_;
  size_t reference_fill_ = 0;
  std::deque<size_t> recent_;
  size_t drift_count_ = 0;
};

}  // namespace drift
}  // namespace ml4db

#endif  // ML4DB_DRIFT_DETECTORS_H_
