#include "drift/retrain_scheduler.h"

#include "common/stopwatch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace ml4db {
namespace drift {

RetrainScheduler::RetrainScheduler() : RetrainScheduler(Options{}) {}

RetrainScheduler::RetrainScheduler(Options options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &common::ThreadPool::Global()) {}

RetrainScheduler::~RetrainScheduler() { Drain(); }

bool RetrainScheduler::Schedule(
    std::string label, std::function<std::shared_ptr<void>()> fit) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!inflight_labels_.insert(label).second) {
      // A fit for this label is already queued or running; the pending
      // one will fold the same (or newer) snapshot, so a second build
      // would only burn pool time to produce an immediately stale model.
      ++coalesced_;
      obs::GetCounter("ml4db.drift.retrains_coalesced")->Inc();
      return false;
    }
    ++pending_;
  }
  obs::GetCounter("ml4db.drift.retrains_scheduled")->Inc();
  // The future is intentionally dropped: completion is reported through
  // TakeReady()/Drain(), and RunFit swallows fit exceptions into failed().
  const auto scheduled_at = std::chrono::steady_clock::now();
  pool_->Submit([this, label = std::move(label), fit = std::move(fit),
                 scheduled_at]() mutable {
    RunFit(std::move(label), fit, scheduled_at);
  });
  return true;
}

void RetrainScheduler::RunFit(
    std::string label, const std::function<std::shared_ptr<void>()>& fit,
    std::chrono::steady_clock::time_point scheduled_at) {
  const double queue_wait_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    scheduled_at)
          .count();
  Stopwatch sw;
  std::shared_ptr<void> model;
  bool threw = false;
  try {
    model = fit();
  } catch (...) {
    threw = true;
  }
  const double fit_seconds = sw.ElapsedSeconds();
  const bool ok = !threw && model != nullptr;
  // Recent retrain activity for the /metrics sliding window: a burst here
  // with flat recent QPS is the signature of a drift storm.
  obs::GetWindowedRate("ml4db.drift.recent_retrains")->Inc();
  if (ok) {
    obs::PublishEvent(obs::EventKind::kRetrain, options_.module,
                      "background refit ready: " + label, fit_seconds);
    obs::GetCounter("ml4db.drift.retrains_completed")->Inc();
  } else {
    obs::PublishEvent(obs::EventKind::kRetrain, options_.module,
                      "background refit FAILED: " + label, fit_seconds);
    obs::GetCounter("ml4db.drift.retrains_failed")->Inc();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Clear the in-flight mark before publishing: once the result is
  // visible, a new Schedule for this label must train again.
  inflight_labels_.erase(label);
  if (ok) {
    ready_.push_back(Ready{std::move(label), std::move(model), fit_seconds,
                           queue_wait_seconds});
    ++completed_;
  } else {
    ++failed_;
  }
  --pending_;
  cv_.notify_all();
}

std::vector<RetrainScheduler::Ready> RetrainScheduler::TakeReady() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Ready> out;
  out.swap(ready_);
  return out;
}

std::vector<RetrainScheduler::Ready> RetrainScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  std::vector<Ready> out;
  out.swap(ready_);
  return out;
}

size_t RetrainScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

uint64_t RetrainScheduler::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t RetrainScheduler::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

uint64_t RetrainScheduler::coalesced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

}  // namespace drift
}  // namespace ml4db
