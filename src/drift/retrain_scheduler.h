// Background retrain scheduler: drift-triggered model refits run as
// thread-pool jobs so the serving path keeps answering with the current
// model while the replacement trains (the paper's §4 deployment concern:
// retraining a learned component must not stall query processing).
//
// The scheduler is model-agnostic: a fit job is any callable producing a
// `std::shared_ptr<void>` (type-erased model); callers recover the type
// with `std::static_pointer_cast` when they swap the result in. Each
// completion publishes an obs `kRetrain` event carrying the fit
// wall-clock, so bench exports show when retrains landed relative to the
// query stream.
//
// With a single-thread pool (ML4DB_THREADS=1) Submit runs inline, so
// Schedule trains synchronously and the result is ready on return —
// single-threaded runs behave exactly like the old blocking refit.

#ifndef ML4DB_DRIFT_RETRAIN_SCHEDULER_H_
#define ML4DB_DRIFT_RETRAIN_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.h"

namespace ml4db {
namespace drift {

class RetrainScheduler {
 public:
  struct Options {
    /// Pool running the fits; the process-wide pool when null.
    common::ThreadPool* pool = nullptr;
    /// Module tag on published kRetrain events (e.g. "drift.cardest").
    std::string module = "drift.retrain";
  };

  RetrainScheduler();
  explicit RetrainScheduler(Options options);
  /// Blocks until every in-flight fit completes (results are discarded if
  /// never taken).
  ~RetrainScheduler();

  RetrainScheduler(const RetrainScheduler&) = delete;
  RetrainScheduler& operator=(const RetrainScheduler&) = delete;

  /// A completed fit, as returned by TakeReady().
  struct Ready {
    std::string label;            ///< Schedule's label, e.g. "window-3"
    std::shared_ptr<void> model;  ///< the fit's product (never null)
    double fit_seconds = 0.0;     ///< fit wall-clock
    /// Schedule() to fit start — pool queueing delay, the retrain-audit
    /// signal that the pool (not the build) is the bottleneck.
    double queue_wait_seconds = 0.0;
  };

  /// Queues `fit` on the pool. The job may not touch the model currently
  /// serving — it builds a replacement from its own (snapshotted) data.
  /// A fit that throws or returns null is counted in failed() and
  /// publishes no model.
  ///
  /// Duplicate requests coalesce: while a fit for `label` is in flight
  /// (scheduled but not yet completed), further Schedule calls with the
  /// same label are dropped — a staleness burst re-noticing the same
  /// stale column every poll tick must not queue redundant folds. Returns
  /// true when the fit was enqueued, false when it coalesced into the
  /// pending one (counted in coalesced() and the
  /// `ml4db.drift.retrains_coalesced` counter).
  bool Schedule(std::string label, std::function<std::shared_ptr<void>()> fit);

  /// Typed convenience: `fit` returns shared_ptr<T>; recover with
  /// `std::static_pointer_cast<T>(ready.model)`.
  template <typename T>
  bool Schedule(std::string label, std::function<std::shared_ptr<T>()> fit) {
    return Schedule(std::move(label),
                    std::function<std::shared_ptr<void>()>(std::move(fit)));
  }

  /// Non-blocking: completed fits since the last call, completion order.
  /// Poll from the serving thread and swap the newest model in.
  std::vector<Ready> TakeReady();

  /// Blocks until all scheduled fits complete; returns the fits that
  /// finished during the wait plus any untaken earlier ones.
  std::vector<Ready> Drain();

  /// Fits scheduled but not yet completed.
  size_t pending() const;
  /// Completed fits (successful; includes taken ones).
  uint64_t completed() const;
  /// Fits that threw or produced a null model.
  uint64_t failed() const;
  /// Schedule calls dropped because the same label was already in flight.
  uint64_t coalesced() const;

 private:
  void RunFit(std::string label,
              const std::function<std::shared_ptr<void>()>& fit,
              std::chrono::steady_clock::time_point scheduled_at);

  Options options_;
  common::ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Ready> ready_;
  /// Labels with an in-flight fit (Schedule accepted, RunFit not done).
  std::unordered_set<std::string> inflight_labels_;
  size_t pending_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t coalesced_ = 0;
};

}  // namespace drift
}  // namespace ml4db

#endif  // ML4DB_DRIFT_RETRAIN_SCHEDULER_H_
