#include "datagen/workload_datagen.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace ml4db {
namespace datagen {

WorkloadDrivenGenerator::WorkloadDrivenGenerator(DataGenFitOptions options)
    : options_(options) {
  ML4DB_CHECK(options.grid >= 2);
  ML4DB_CHECK(options.sweeps >= 1);
}

double WorkloadDrivenGenerator::Coverage(int i, int j, double x_lo,
                                         double x_hi, double y_lo,
                                         double y_hi) const {
  const double g = static_cast<double>(options_.grid);
  const double cx_lo = i / g, cx_hi = (i + 1) / g;
  const double cy_lo = j / g, cy_hi = (j + 1) / g;
  const double wx = std::min(cx_hi, x_hi) - std::max(cx_lo, x_lo);
  const double wy = std::min(cy_hi, y_hi) - std::max(cy_lo, y_lo);
  if (wx <= 0 || wy <= 0) return 0.0;
  return (wx * g) * (wy * g);  // fraction of the cell covered
}

Status WorkloadDrivenGenerator::Fit(
    const std::vector<CardinalityObservation>& observations,
    double total_rows) {
  if (observations.empty()) {
    return Status::InvalidArgument("no observations");
  }
  if (total_rows <= 0) {
    return Status::InvalidArgument("total_rows must be positive");
  }
  total_rows_ = total_rows;
  const int g = options_.grid;
  mass_.assign(static_cast<size_t>(g) * g, total_rows / (g * g));

  for (int sweep = 0; sweep < options_.sweeps; ++sweep) {
    for (const auto& obs : observations) {
      // Current model mass inside the box.
      double cur = 0.0;
      for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
          const double cov = Coverage(i, j, obs.x_lo, obs.x_hi, obs.y_lo, obs.y_hi);
          if (cov > 0) cur += CellMass(i, j) * cov;
        }
      }
      if (cur < 1e-9) continue;
      const double target = std::max(obs.cardinality, 0.0);
      double ratio = target > 0 ? target / cur : 0.1;  // zero-answer shrink
      if (options_.damping != 1.0) {
        ratio = std::pow(ratio, options_.damping);
      }
      ratio = Clamp(ratio, 0.05, 20.0);  // guard divergence
      for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
          const double cov = Coverage(i, j, obs.x_lo, obs.x_hi, obs.y_lo, obs.y_hi);
          if (cov <= 0) continue;
          // Scale covered mass; partially covered cells blend.
          const double m = mass_[static_cast<size_t>(i) * g + j];
          mass_[static_cast<size_t>(i) * g + j] =
              m * (1.0 - cov) + m * cov * ratio;
        }
      }
    }
    // Re-anchor the total mass to the known row count.
    double total = 0.0;
    for (double m : mass_) total += m;
    if (total > 1e-9) {
      const double scale = total_rows_ / total;
      for (double& m : mass_) m *= scale;
    }
  }
  fitted_ = true;
  return Status::OK();
}

double WorkloadDrivenGenerator::EstimateCardinality(double x_lo, double x_hi,
                                                    double y_lo,
                                                    double y_hi) const {
  ML4DB_CHECK(fitted_);
  const int g = options_.grid;
  double acc = 0.0;
  for (int i = 0; i < g; ++i) {
    for (int j = 0; j < g; ++j) {
      const double cov = Coverage(i, j, x_lo, x_hi, y_lo, y_hi);
      if (cov > 0) acc += CellMass(i, j) * cov;
    }
  }
  return acc;
}

double WorkloadDrivenGenerator::FitError(
    const std::vector<CardinalityObservation>& holdout) const {
  ML4DB_CHECK(!holdout.empty());
  double acc = 0.0;
  for (const auto& obs : holdout) {
    const double est =
        EstimateCardinality(obs.x_lo, obs.x_hi, obs.y_lo, obs.y_hi);
    acc += std::abs(est - obs.cardinality) / std::max(obs.cardinality, 1.0);
  }
  return acc / static_cast<double>(holdout.size());
}

std::vector<std::pair<double, double>> WorkloadDrivenGenerator::Sample(
    size_t n, Rng& rng) const {
  ML4DB_CHECK(fitted_);
  const int g = options_.grid;
  std::vector<double> weights(mass_.begin(), mass_.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    const size_t cell = rng.Categorical(weights);
    const int i = static_cast<int>(cell) / g;
    const int j = static_cast<int>(cell) % g;
    out.emplace_back((i + rng.NextDouble()) / g, (j + rng.NextDouble()) / g);
  }
  return out;
}

}  // namespace datagen
}  // namespace ml4db
