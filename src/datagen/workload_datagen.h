// Workload-driven synthetic database generation — the paper's open problem
// 4 ("generating training data of high quality"), following SAM (Yang et
// al. 2022, ref [49]): given only the *answers* a private database returned
// to a query workload (query predicates + observed cardinalities — no raw
// rows), synthesize a data distribution whose query answers match, so
// ML4DB components can be trained on privacy-compliant synthetic data.
//
// This laptop-scale variant fits a 2-d histogram grid over two attribute
// columns by multiplicative (iterative-proportional-fitting-style) updates
// against the observed box cardinalities, then samples synthetic rows.

#ifndef ML4DB_DATAGEN_WORKLOAD_DATAGEN_H_
#define ML4DB_DATAGEN_WORKLOAD_DATAGEN_H_

#include "common/rng.h"
#include "common/status.h"
#include "ml/matrix.h"

namespace ml4db {
namespace datagen {

/// One workload observation: the query's rectangle over the two modeled
/// columns (full domain when a column is unfiltered) and the cardinality
/// the private database returned.
struct CardinalityObservation {
  double x_lo = 0.0, x_hi = 1.0;  ///< normalized [0,1] filter interval, col A
  double y_lo = 0.0, y_hi = 1.0;  ///< col B
  double cardinality = 0.0;
};

/// Options for the generator.
struct DataGenFitOptions {
  int grid = 32;        ///< cells per axis
  int sweeps = 60;      ///< multiplicative-update passes over the workload
  double damping = 1.0; ///< update exponent (1 = full IPF step)
};

/// Fits a 2-d distribution to query-cardinality feedback and samples
/// synthetic rows from it.
class WorkloadDrivenGenerator {
 public:
  explicit WorkloadDrivenGenerator(DataGenFitOptions options = {});

  /// Fits the grid to the observations. `total_rows` anchors the overall
  /// mass (the private table's row count — typically public metadata).
  Status Fit(const std::vector<CardinalityObservation>& observations,
             double total_rows);

  bool fitted() const { return fitted_; }

  /// Model's estimated cardinality for a box (diagnostic + holdout eval).
  double EstimateCardinality(double x_lo, double x_hi, double y_lo,
                             double y_hi) const;

  /// Mean relative cardinality error over a set of observations.
  double FitError(const std::vector<CardinalityObservation>& holdout) const;

  /// Samples `n` synthetic (x, y) pairs in normalized [0,1) coordinates.
  std::vector<std::pair<double, double>> Sample(size_t n, Rng& rng) const;

  int grid() const { return options_.grid; }

 private:
  double CellMass(int i, int j) const { return mass_[i * options_.grid + j]; }
  /// Fraction of cell (i,j) covered by the box, by area.
  double Coverage(int i, int j, double x_lo, double x_hi, double y_lo,
                  double y_hi) const;

  DataGenFitOptions options_;
  std::vector<double> mass_;  // grid x grid, sums to total_rows
  double total_rows_ = 0.0;
  bool fitted_ = false;
};

}  // namespace datagen
}  // namespace ml4db

#endif  // ML4DB_DATAGEN_WORKLOAD_DATAGEN_H_
