// ParamTree (Yang et al. 2023; paper §3.2): instead of learning a cost
// model from scratch, learn the *hyperparameters* (R-params) of the
// formula-based cost model from observed executions. Each executed plan
// node contributes (true work counters, own latency); the R-params solve
// the resulting least-squares system — interpretable, tiny, and directly
// pluggable into the existing optimizer. A per-operator refinement stage
// (the "tree" in ParamTree: regimes split by operator type) reports
// whether a single global parameter set suffices.

#ifndef ML4DB_OPTIMIZER_PARAMTREE_H_
#define ML4DB_OPTIMIZER_PARAMTREE_H_

#include <array>

#include "engine/database.h"
#include "ml/matrix.h"

namespace ml4db {
namespace optimizer {

/// Least-squares R-param learner.
class ParamTreeTuner {
 public:
  ParamTreeTuner() = default;

  /// Walks an executed plan and absorbs every node's (work, own-latency)
  /// observation. Nodes must carry actuals (run the executor first).
  void AbsorbPlan(const engine::PhysicalPlan& plan);

  /// Convenience: execute `queries` on `db` (expert plans) and absorb.
  Status CollectFrom(const engine::Database& db,
                     const std::vector<engine::Query>& queries);

  size_t num_observations() const { return n_; }

  /// Solves for the R-params (non-negative least squares via clamped
  /// normal equations). Requires >= kNumParams observations.
  StatusOr<engine::CostParams> Fit() const;

  /// Mean relative pricing error of `params` over the absorbed
  /// observations (diagnostic: how well the formula explains latency).
  double RelativeError(const engine::CostParams& params) const;

  /// Per-operator-type regime refinement: fits params per operator kind
  /// and returns the per-regime relative errors (the ParamTree split
  /// criterion — large gains justify regime splits).
  std::array<double, 5> PerOperatorError(const engine::CostParams& global) const;

 private:
  void AbsorbNode(const engine::PlanNode& node);

  static ml::Vec WorkVector(const engine::OperatorWork& w);

  // Sufficient statistics for least squares.
  ml::Matrix xtx_{engine::CostParams::kNumParams,
                  engine::CostParams::kNumParams};
  ml::Vec xty_ = ml::Vec(engine::CostParams::kNumParams, 0.0);
  size_t n_ = 0;
  // Raw observations kept for error reporting (ops are small counts here).
  std::vector<std::pair<ml::Vec, double>> observations_;
  std::vector<int> op_kinds_;
};

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_PARAMTREE_H_
