// LEON (Chen et al. 2023; paper §3.2): ML-aided query optimization. The
// expert DP search is retained; a pairwise-ranking model re-ranks
// equivalent sub-plans, mixed with the expert cost model, and the
// optimizer falls back to pure expert cost while the model is untrained or
// unconfident. The DP keeps the top-k plans per subset so the learned
// ranker has alternatives to promote.

#ifndef ML4DB_OPTIMIZER_LEON_H_
#define ML4DB_OPTIMIZER_LEON_H_

#include <deque>
#include <memory>

#include "planrepr/plan_features.h"
#include "planrepr/plan_regressor.h"

namespace ml4db {
namespace optimizer {

/// ML-aided DP optimizer.
class LeonOptimizer {
 public:
  struct Options {
    size_t top_k = 3;            ///< candidate plans kept per DP subset
    planrepr::EncoderKind encoder = planrepr::EncoderKind::kTreeLstm;
    size_t embedding_dim = 24;
    int train_epochs = 10;
    /// Pairs absorbed before the model influences ranking (fallback gate).
    size_t min_pairs = 40;
    /// Minimum prequential ranking accuracy before the model is trusted
    /// (the LEON fallback: an inaccurate model must not steer the plan).
    double min_accuracy = 0.65;
    /// Weight of the model score once trusted (expert keeps 1 - weight).
    /// The downside is bounded either way: candidates are the expert's own
    /// top-k plans.
    double model_weight = 0.5;
    /// Prequential window (recent pairs only, so pre-training guesses
    /// don't poison the estimate forever).
    size_t accuracy_window = 200;
    uint64_t seed = 41;
  };

  LeonOptimizer(const engine::Database* db,
                const planrepr::PlanFeaturizer* featurizer, Options options);

  /// Plans with the ML-aided DP; identical to the expert when untrained.
  StatusOr<engine::PhysicalPlan> PlanQuery(const engine::Query& query) const;

  /// Top-k complete plans for a query (exposed for training & tests).
  StatusOr<std::vector<engine::PhysicalPlan>> TopPlans(
      const engine::Query& query, size_t k) const;

  /// One training round: for each query, execute its current top plans and
  /// absorb pairwise preferences by observed latency. Returns executed
  /// latency total (the training bill).
  StatusOr<double> TrainRound(const std::vector<engine::Query>& queries);

  /// The model steers only when it has enough pairs AND its prequential
  /// ranking accuracy clears the gate — otherwise pure expert (fallback).
  bool model_active() const {
    return pairs_absorbed_ >= options_.min_pairs &&
           PrequentialAccuracy() >= options_.min_accuracy;
  }
  size_t pairs_absorbed() const { return pairs_absorbed_; }

  /// Ranking accuracy measured on each training pair *before* training on
  /// it, over the recent window (honest streaming estimate).
  double PrequentialAccuracy() const {
    if (preq_outcomes_.empty()) return 0.0;
    size_t correct = 0;
    for (bool b : preq_outcomes_) correct += b;
    return static_cast<double>(correct) /
           static_cast<double>(preq_outcomes_.size());
  }

 private:
  /// Mixed final-plan score (lower = better): expert log-cost blended with
  /// the model when trusted. Used only to re-rank complete plans — the
  /// model never steers sub-plan ranking inside the DP (those plans are
  /// out of its training distribution).
  double Score(const engine::Query& query, const engine::PlanNode& plan) const;

  const engine::Database* db_;
  const planrepr::PlanFeaturizer* featurizer_;
  Options options_;
  mutable planrepr::PlanRegressor ranker_;
  size_t pairs_absorbed_ = 0;
  std::deque<bool> preq_outcomes_;
  mutable Rng rng_;
};

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_LEON_H_
