#include "optimizer/autosteer.h"

#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace optimizer {

std::string PlanFingerprint(const engine::PlanNode& node) {
  std::string out = "(";
  out += engine::PlanOpName(node.op);
  if (node.table_slot >= 0) {
    out += ":" + std::to_string(node.table_slot);
  }
  for (const auto& c : node.children) out += PlanFingerprint(*c);
  out += ")";
  return out;
}

AutoSteer::AutoSteer(const engine::Database* db, Options options)
    : db_(db), options_(options), rng_(options.seed) {
  ML4DB_CHECK(db != nullptr);
}

ml::BayesianLinearModel& AutoSteer::ModelFor(const std::string& key) {
  auto it = models_.find(key);
  if (it == models_.end()) {
    it = models_
             .emplace(key, ml::BayesianLinearModel(kBaoFeatureDim,
                                                   options_.prior_alpha,
                                                   options_.noise_var))
             .first;
  }
  return it->second;
}

StatusOr<AutoSteer::Choice> AutoSteer::ChoosePlan(const engine::Query& query) {
  // Stage 1: greedy discovery. Start from the default plan; probe each
  // single-switch hint; keep those that change the plan shape. Then try
  // pairwise combinations of the two most promising switches.
  struct Candidate {
    engine::HintSet hints;
    engine::PhysicalPlan plan;
    std::string fingerprint;
  };
  std::vector<Candidate> candidates;
  auto add_candidate = [&](const engine::HintSet& h) -> Status {
    auto plan = db_->Plan(query, h);
    ML4DB_RETURN_IF_ERROR(plan.status());
    std::string fp = PlanFingerprint(*plan->root);
    for (const auto& c : candidates) {
      if (c.fingerprint == fp) return Status::OK();  // duplicate outcome
    }
    candidates.push_back({h, std::move(*plan), std::move(fp)});
    return Status::OK();
  };
  ML4DB_RETURN_IF_ERROR(add_candidate(engine::HintSet{}));

  std::vector<engine::HintSet> switches;
  {
    engine::HintSet h;
    h.enable_hash_join = false;
    switches.push_back(h);
  }
  {
    engine::HintSet h;
    h.enable_index_nl_join = false;
    switches.push_back(h);
  }
  {
    engine::HintSet h;
    h.enable_nl_join = false;
    switches.push_back(h);
  }
  {
    engine::HintSet h;
    h.enable_index_scan = false;
    switches.push_back(h);
  }
  {
    engine::HintSet h;
    h.left_deep_only = true;
    switches.push_back(h);
  }
  std::vector<engine::HintSet> effective;
  for (const auto& h : switches) {
    const size_t before = candidates.size();
    ML4DB_RETURN_IF_ERROR(add_candidate(h));
    if (candidates.size() > before) effective.push_back(h);
    if (candidates.size() >= options_.max_arms_per_query) break;
  }
  // Pairwise combinations of effective switches.
  for (size_t i = 0;
       i < effective.size() && candidates.size() < options_.max_arms_per_query;
       ++i) {
    for (size_t j = i + 1;
         j < effective.size() &&
         candidates.size() < options_.max_arms_per_query;
         ++j) {
      engine::HintSet combo = effective[i];
      combo.enable_hash_join &= effective[j].enable_hash_join;
      combo.enable_index_nl_join &= effective[j].enable_index_nl_join;
      combo.enable_nl_join &= effective[j].enable_nl_join;
      combo.enable_index_scan &= effective[j].enable_index_scan;
      combo.left_deep_only |= effective[j].left_deep_only;
      if (!combo.enable_hash_join && !combo.enable_index_nl_join &&
          !combo.enable_nl_join) {
        continue;
      }
      ML4DB_RETURN_IF_ERROR(add_candidate(combo));
    }
  }

  // Stage 2: Thompson sampling over the candidate arms (keyed by hint
  // name, so knowledge transfers across queries choosing the same arm).
  Choice best;
  double best_sample = std::numeric_limits<double>::infinity();
  bool found = false;
  for (auto& cand : candidates) {
    const std::string key = cand.hints.Name();
    ml::BayesianLinearModel& model = ModelFor(key);
    const ml::Vec features = BaoPlanFeatures(cand.plan);
    const double sampled = model.num_observations() < 3
                               ? rng_.Gaussian(0.0, 1.0)
                               : model.SamplePrediction(features, rng_);
    if (!found || sampled < best_sample) {
      found = true;
      best_sample = sampled;
      best.hints = cand.hints;
      best.plan = std::move(cand.plan);
      best.arm_key = key;
    }
  }
  if (!found) return Status::Internal("no candidate plan");
  return best;
}

void AutoSteer::Feedback(const Choice& choice, double latency) {
  ModelFor(choice.arm_key)
      .Observe(BaoPlanFeatures(choice.plan), std::log1p(latency));
  static obs::Counter* feedbacks =
      obs::GetCounter("ml4db.optimizer.autosteer.feedbacks");
  feedbacks->Inc();
  obs::PublishEvent(obs::EventKind::kRetrain, "optimizer.autosteer",
                    "arm " + choice.arm_key + " updated", latency);
}

StatusOr<double> AutoSteer::RunAndLearn(const engine::Query& query) {
  ML4DB_ASSIGN_OR_RETURN(Choice choice, ChoosePlan(query));
  auto result = db_->Execute(query, &choice.plan);
  ML4DB_RETURN_IF_ERROR(result.status());
  Feedback(choice, result->latency);
  return result->latency;
}

}  // namespace optimizer
}  // namespace ml4db
