#include "optimizer/bao.h"

#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace optimizer {

namespace {

void CountOps(const engine::PlanNode& node, std::vector<double>* counts,
              int* depth, double* est_probes, int level) {
  (*counts)[static_cast<size_t>(node.op)] += 1.0;
  *depth = std::max(*depth, level);
  if (node.op == engine::PlanOp::kIndexNlJoin && !node.children.empty()) {
    // Each outer row drives one index probe.
    *est_probes += node.children.front()->est_rows;
  }
  for (const auto& c : node.children) {
    CountOps(*c, counts, depth, est_probes, level + 1);
  }
}

}  // namespace

ml::Vec BaoPlanFeatures(const engine::PhysicalPlan& plan) {
  ML4DB_CHECK(plan.root != nullptr);
  std::vector<double> op_counts(5, 0.0);
  int depth = 0;
  double est_probes = 0.0;
  CountOps(*plan.root, &op_counts, &depth, &est_probes, 1);
  ml::Vec f;
  f.reserve(kBaoFeatureDim);
  for (double c : op_counts) f.push_back(c);           // 5 operator counts
  f.push_back(std::log1p(plan.root->est_cost));        // expert cost signal
  f.push_back(std::log1p(plan.root->est_rows));
  f.push_back(std::log1p(est_probes));  // random-I/O exposure of the plan
  f.push_back(static_cast<double>(depth));
  f.push_back(static_cast<double>(plan.root->TreeSize()));
  f.push_back(1.0);                                    // bias
  ML4DB_DCHECK(f.size() == kBaoFeatureDim);
  return f;
}

BaoOptimizer::BaoOptimizer(const engine::Database* db, Options options,
                           std::vector<engine::HintSet> arms)
    : db_(db), options_(options), arms_(std::move(arms)), rng_(options.seed) {
  ML4DB_CHECK(db != nullptr);
  ML4DB_CHECK(!arms_.empty());
  for (size_t i = 0; i < arms_.size(); ++i) {
    models_.emplace_back(kBaoFeatureDim, options_.prior_alpha,
                         options_.noise_var);
  }
  arm_picks_.assign(arms_.size(), 0);
}

StatusOr<BaoOptimizer::Choice> BaoOptimizer::ChoosePlan(
    const engine::Query& query) {
  Choice best;
  double best_sample = std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t a = 0; a < arms_.size(); ++a) {
    auto plan = db_->Plan(query, arms_[a]);
    if (!plan.ok()) continue;
    const ml::Vec features = BaoPlanFeatures(*plan);
    double sampled;
    if (models_[a].num_observations() < 3) {
      // Cold arm: fall back to the expert's own belief (log cost) plus
      // exploration noise — Bao's safety property that the worst case is
      // the expert's plan, even before any feedback.
      sampled = std::log1p(plan->root->est_cost) + rng_.Gaussian(0.0, 0.3);
    } else {
      sampled = models_[a].SamplePrediction(features, rng_);
    }
    if (!found || sampled < best_sample) {
      found = true;
      best_sample = sampled;
      best.arm = a;
      best.plan = std::move(*plan);
    }
  }
  if (!found) return Status::Internal("no arm produced a plan");
  return best;
}

void BaoOptimizer::Feedback(const Choice& choice, double latency) {
  if (options_.evidence_decay < 1.0) {
    for (auto& m : models_) m.DecayEvidence(options_.evidence_decay);
  }
  models_[choice.arm].Observe(BaoPlanFeatures(choice.plan),
                              std::log1p(latency));
  arm_picks_[choice.arm] += 1;
  ++feedback_count_;
  static obs::Counter* feedbacks =
      obs::GetCounter("ml4db.optimizer.bao.feedbacks");
  feedbacks->Inc();
  obs::PublishEvent(obs::EventKind::kRetrain, "optimizer.bao",
                    "arm " + std::to_string(choice.arm) + " updated", latency);
}

StatusOr<double> BaoOptimizer::RunAndLearn(const engine::Query& query) {
  ML4DB_ASSIGN_OR_RETURN(Choice choice, ChoosePlan(query));
  auto result = db_->Execute(query, &choice.plan);
  ML4DB_RETURN_IF_ERROR(result.status());
  Feedback(choice, result->latency);
  return result->latency;
}

}  // namespace optimizer
}  // namespace ml4db
