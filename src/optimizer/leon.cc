#include "optimizer/leon.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/math_util.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace optimizer {

using engine::PhysicalPlan;
using engine::PlanNode;
using engine::Query;
using engine::SlotBit;
using engine::SlotMask;

LeonOptimizer::LeonOptimizer(const engine::Database* db,
                             const planrepr::PlanFeaturizer* featurizer,
                             Options options)
    : db_(db),
      featurizer_(featurizer),
      options_(options),
      ranker_(featurizer->dim(),
              [&] {
                planrepr::PlanRegressorOptions o;
                o.encoder = options.encoder;
                o.embedding_dim = options.embedding_dim;
                o.output_dim = 1;
                o.seed = options.seed;
                return o;
              }()),
      rng_(options.seed ^ 0x5555ULL) {
  ML4DB_CHECK(db != nullptr && featurizer != nullptr);
}

double LeonOptimizer::Score(const Query& query, const PlanNode& plan) const {
  const double expert = std::log1p(plan.est_cost);
  if (!model_active()) return expert;
  const double model =
      ranker_.Predict(featurizer_->Encode(query, plan))[0];
  return (1.0 - options_.model_weight) * expert +
         options_.model_weight * model;
}

StatusOr<std::vector<PhysicalPlan>> LeonOptimizer::TopPlans(
    const Query& query, size_t k) const {
  const int n = query.num_tables();
  if (n == 0) return Status::InvalidArgument("empty query");
  if (n > 14) return Status::InvalidArgument("too many tables");
  if (!query.JoinGraphConnected()) {
    return Status::InvalidArgument("join graph not connected");
  }
  const engine::DpOptimizer& expert = db_->optimizer();
  const engine::HintSet hints;

  struct Entry {
    std::unique_ptr<PlanNode> plan;
    double score;
  };
  std::unordered_map<SlotMask, std::vector<Entry>> best;
  // Inside the DP, sub-plans are ranked by the expert cost alone; the
  // learned ranker only re-orders the complete top-k at the end (its
  // training pairs are complete plans).
  auto push_entry = [&](SlotMask mask, std::unique_ptr<PlanNode> plan) {
    const double score = std::log1p(plan->est_cost);
    auto& vec = best[mask];
    vec.push_back({std::move(plan), score});
    std::sort(vec.begin(), vec.end(),
              [](const Entry& a, const Entry& b) { return a.score < b.score; });
    if (vec.size() > options_.top_k) vec.resize(options_.top_k);
  };

  for (int s = 0; s < n; ++s) {
    push_entry(SlotBit(s), expert.BestScan(query, s, hints));
  }
  const SlotMask full = (SlotMask{1} << n) - 1;
  for (SlotMask mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    for (SlotMask sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const SlotMask other = mask ^ sub;
      if (sub > other) continue;
      auto li = best.find(sub);
      auto ri = best.find(other);
      if (li == best.end() || ri == best.end()) continue;
      for (const Entry& le : li->second) {
        for (const Entry& re : ri->second) {
          auto joins = expert.CandidateJoins(query, *le.plan, *re.plan, hints);
          for (auto& j : joins) push_entry(mask, std::move(j));
        }
      }
    }
  }
  auto it = best.find(full);
  if (it == best.end() || it->second.empty()) {
    return Status::Internal("LEON DP found no complete plan");
  }
  // Final re-ranking of complete plans by the mixed score. Expert cost and
  // model score live on different scales, so both are z-normalized within
  // the candidate set before blending.
  std::vector<Entry>& finals = it->second;
  if (model_active() && finals.size() > 1) {
    std::vector<double> expert_s(finals.size()), model_s(finals.size());
    for (size_t i = 0; i < finals.size(); ++i) {
      expert_s[i] = std::log1p(finals[i].plan->est_cost);
      model_s[i] =
          ranker_.Predict(featurizer_->Encode(query, *finals[i].plan))[0];
    }
    auto znorm = [](std::vector<double>& v) {
      const double m = Mean(v);
      const double sd = std::max(StdDev(v), 1e-9);
      for (double& x : v) x = (x - m) / sd;
    };
    znorm(expert_s);
    znorm(model_s);
    for (size_t i = 0; i < finals.size(); ++i) {
      finals[i].score = (1.0 - options_.model_weight) * expert_s[i] +
                        options_.model_weight * model_s[i];
    }
  }
  std::sort(finals.begin(), finals.end(),
            [](const Entry& a, const Entry& b) { return a.score < b.score; });
  std::vector<PhysicalPlan> out;
  for (Entry& e : finals) {
    if (out.size() >= k) break;
    out.emplace_back(std::move(e.plan));
  }
  return out;
}

StatusOr<PhysicalPlan> LeonOptimizer::PlanQuery(const Query& query) const {
  ML4DB_ASSIGN_OR_RETURN(std::vector<PhysicalPlan> plans, TopPlans(query, 1));
  return std::move(plans.front());
}

StatusOr<double> LeonOptimizer::TrainRound(
    const std::vector<Query>& queries) {
  double total = 0.0;
  struct Labeled {
    ml::FeatureTree tree;
    double latency;
  };
  std::vector<std::pair<ml::FeatureTree, ml::FeatureTree>> pairs;
  for (const Query& query : queries) {
    ML4DB_ASSIGN_OR_RETURN(std::vector<PhysicalPlan> plans,
                           TopPlans(query, options_.top_k));
    std::vector<Labeled> labeled;
    for (PhysicalPlan& plan : plans) {
      auto result = db_->Execute(query, &plan);
      ML4DB_RETURN_IF_ERROR(result.status());
      total += result->latency;
      labeled.push_back(
          {featurizer_->Encode(query, *plan.root), result->latency});
    }
    for (size_t i = 0; i < labeled.size(); ++i) {
      for (size_t j = i + 1; j < labeled.size(); ++j) {
        if (labeled[i].latency == labeled[j].latency) continue;
        const bool i_better = labeled[i].latency < labeled[j].latency;
        const ml::FeatureTree& better = labeled[i_better ? i : j].tree;
        const ml::FeatureTree& worse = labeled[i_better ? j : i].tree;
        // Prequential accuracy: score the pair before training on it.
        preq_outcomes_.push_back(ranker_.Predict(better)[0] <
                                 ranker_.Predict(worse)[0]);
        while (preq_outcomes_.size() > options_.accuracy_window) {
          preq_outcomes_.pop_front();
        }
        pairs.emplace_back(better, worse);
      }
    }
  }
  // Train the ranker on accumulated pairs.
  for (int epoch = 0; epoch < options_.train_epochs; ++epoch) {
    std::vector<size_t> order(pairs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.Shuffle(order);
    size_t in_batch = 0;
    for (size_t i : order) {
      ranker_.AccumulateRanking(pairs[i].first, pairs[i].second);
      if (++in_batch >= 8) {
        ranker_.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) ranker_.Step();
  }
  pairs_absorbed_ += pairs.size();
  static obs::Counter* rounds =
      obs::GetCounter("ml4db.optimizer.leon.train_rounds");
  rounds->Inc();
  obs::PublishEvent(obs::EventKind::kRetrain, "optimizer.leon",
                    std::to_string(pairs.size()) + " ranking pairs absorbed",
                    total);
  return total;
}

}  // namespace optimizer
}  // namespace ml4db
