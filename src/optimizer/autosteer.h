// AutoSteer (Anneser et al. 2023; paper §3.2): removes Bao's hand-crafted
// hint-set requirement. For each query it greedily discovers *effective*
// single-switch hints (those that actually change the expert's plan),
// combines promising ones into candidate hint sets, and runs the Bao-style
// Thompson-sampling bandit over the dynamically discovered arm pool.

#ifndef ML4DB_OPTIMIZER_AUTOSTEER_H_
#define ML4DB_OPTIMIZER_AUTOSTEER_H_

#include <map>
#include <string>

#include "optimizer/bao.h"

namespace ml4db {
namespace optimizer {

/// Structural fingerprint of a plan (operator tree shape); two plans with
/// equal fingerprints are treated as the same arm outcome.
std::string PlanFingerprint(const engine::PlanNode& node);

/// Dynamic hint-set discovery + bandit.
class AutoSteer {
 public:
  struct Options {
    size_t max_arms_per_query = 6;  ///< candidate plans evaluated per query
    double prior_alpha = 0.5;
    double noise_var = 1.0;
    uint64_t seed = 23;
  };

  AutoSteer(const engine::Database* db, Options options);

  struct Choice {
    engine::HintSet hints;
    engine::PhysicalPlan plan;
    std::string arm_key;  ///< registry key of the chosen arm
  };

  /// Discovers effective hints for this query, Thompson-samples among the
  /// resulting candidate plans, returns the winner.
  StatusOr<Choice> ChoosePlan(const engine::Query& query);

  /// Observed-latency feedback for the chosen arm.
  void Feedback(const Choice& choice, double latency);

  StatusOr<double> RunAndLearn(const engine::Query& query);

  /// Number of distinct effective hint sets discovered so far.
  size_t discovered_arms() const { return models_.size(); }

 private:
  ml::BayesianLinearModel& ModelFor(const std::string& key);

  const engine::Database* db_;
  Options options_;
  std::map<std::string, ml::BayesianLinearModel> models_;  // arm registry
  Rng rng_;
};

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_AUTOSTEER_H_
