#include "optimizer/paramtree.h"

#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace optimizer {

ml::Vec ParamTreeTuner::WorkVector(const engine::OperatorWork& w) {
  return {w.seq_pages,         w.rand_pages,       w.input_tuples,
          w.filter_evals,      w.hash_build_tuples, w.hash_probe_tuples,
          w.output_tuples};
}

void ParamTreeTuner::AbsorbNode(const engine::PlanNode& node) {
  for (const auto& c : node.children) AbsorbNode(*c);
  if (node.actual_cost < 0) return;  // not executed
  double own = node.actual_cost;
  for (const auto& c : node.children) {
    if (c->actual_cost > 0) own -= c->actual_cost;
  }
  const ml::Vec w = WorkVector(node.actual_work);
  ml::AddOuter(xtx_, w, w);
  ml::AxpyInPlace(xty_, w, own);
  observations_.emplace_back(w, own);
  op_kinds_.push_back(static_cast<int>(node.op));
  ++n_;
}

void ParamTreeTuner::AbsorbPlan(const engine::PhysicalPlan& plan) {
  ML4DB_CHECK(plan.root != nullptr);
  AbsorbNode(*plan.root);
}

Status ParamTreeTuner::CollectFrom(const engine::Database& db,
                                   const std::vector<engine::Query>& queries) {
  for (const auto& query : queries) {
    ML4DB_ASSIGN_OR_RETURN(engine::PhysicalPlan plan, db.Plan(query));
    auto result = db.Execute(query, &plan);
    ML4DB_RETURN_IF_ERROR(result.status());
    AbsorbPlan(plan);
  }
  return Status::OK();
}

StatusOr<engine::CostParams> ParamTreeTuner::Fit() const {
  constexpr size_t d = engine::CostParams::kNumParams;
  if (n_ < d) {
    return Status::FailedPrecondition("not enough observations to fit");
  }
  // Ridge-regularized normal equations (tiny ridge keeps rarely-exercised
  // counters identifiable).
  ml::Matrix a = xtx_;
  for (size_t i = 0; i < d; ++i) a.At(i, i) += 1e-6;
  ml::Vec params = ml::CholeskySolve(a, xty_);
  engine::CostParams out;
  for (size_t i = 0; i < d; ++i) {
    // R-params are physically non-negative; clamp tiny negatives from
    // collinear counters.
    out.Set(i, std::max(params[i], 0.0));
  }
  static obs::Counter* fits = obs::GetCounter("ml4db.optimizer.paramtree.fits");
  fits->Inc();
  obs::PublishEvent(obs::EventKind::kRetrain, "optimizer.paramtree",
                    "cost constants refit", static_cast<double>(n_));
  return out;
}

double ParamTreeTuner::RelativeError(const engine::CostParams& params) const {
  if (observations_.empty()) return 0.0;
  const ml::Vec p = {params.seq_page_cost,   params.rand_page_cost,
                     params.cpu_tuple_cost,  params.cpu_operator_cost,
                     params.hash_build_cost, params.hash_probe_cost,
                     params.output_tuple_cost};
  double acc = 0.0;
  for (const auto& [w, y] : observations_) {
    const double pred = ml::Dot(p, w);
    acc += std::abs(pred - y) / std::max(std::abs(y), 1e-9);
  }
  return acc / static_cast<double>(observations_.size());
}

std::array<double, 5> ParamTreeTuner::PerOperatorError(
    const engine::CostParams& global) const {
  const ml::Vec p = {global.seq_page_cost,   global.rand_page_cost,
                     global.cpu_tuple_cost,  global.cpu_operator_cost,
                     global.hash_build_cost, global.hash_probe_cost,
                     global.output_tuple_cost};
  std::array<double, 5> err{};
  std::array<size_t, 5> cnt{};
  for (size_t i = 0; i < observations_.size(); ++i) {
    const auto& [w, y] = observations_[i];
    const int op = op_kinds_[i];
    const double pred = ml::Dot(p, w);
    err[op] += std::abs(pred - y) / std::max(std::abs(y), 1e-9);
    cnt[op] += 1;
  }
  for (size_t op = 0; op < err.size(); ++op) {
    if (cnt[op] > 0) err[op] /= static_cast<double>(cnt[op]);
  }
  return err;
}

}  // namespace optimizer
}  // namespace ml4db
