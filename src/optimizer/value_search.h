// Replacement-paradigm learned query optimizers (paper §3.2): a value
// network over partial plans guides plan search, as in NEO (TreeCNN
// encoder, bootstrapped from the expert optimizer then trained on
// latency), RTOS (TreeLSTM encoder, cost-signal bootstrap for training
// efficiency), and Balsa (no expert demonstrations: bootstrap from the
// cost-model "simulation", fine-tune on execution with timeout safety).
// One class, three configurations — the differences the tutorial
// highlights are exactly these knobs.

#ifndef ML4DB_OPTIMIZER_VALUE_SEARCH_H_
#define ML4DB_OPTIMIZER_VALUE_SEARCH_H_

#include <deque>
#include <memory>

#include "costest/collector.h"
#include "planrepr/plan_regressor.h"

namespace ml4db {
namespace optimizer {

/// Configuration of the learned-value plan search.
struct ValueSearchOptions {
  planrepr::EncoderKind encoder = planrepr::EncoderKind::kTreeCnn;  // NEO
  size_t embedding_dim = 32;
  int train_epochs = 12;
  size_t batch_size = 16;
  size_t beam_width = 3;
  /// Balsa mode: bootstrap labels come from the expert *cost model*
  /// (simulation) instead of executed latency.
  bool bootstrap_from_cost = false;
  /// Safe execution: abort on-policy executions beyond
  /// timeout_factor × expert latency and penalize (<= 0 disables).
  double timeout_factor = -1.0;
  size_t max_experience = 8192;
  uint64_t seed = 31;
};

/// Presets matching the surveyed systems.
ValueSearchOptions NeoPreset();
ValueSearchOptions RtosPreset();
ValueSearchOptions BalsaPreset();

/// Value-network-guided plan search ("replacement" learned optimizer).
class ValueSearchOptimizer {
 public:
  ValueSearchOptimizer(const engine::Database* db,
                       const planrepr::PlanFeaturizer* featurizer,
                       ValueSearchOptions options);

  /// Plans a query with the learned search. Falls back to the expert
  /// optimizer until the value network has been trained at least once —
  /// the cold-start behaviour the paper critiques.
  StatusOr<engine::PhysicalPlan> PlanQuery(const engine::Query& query) const;

  /// Whether the network has been trained (off-cold-start).
  bool trained() const { return trained_; }

  /// Phase 1: collect experiences from expert plans (NEO bootstrap) or the
  /// cost model (Balsa), then train.
  Status Bootstrap(const std::vector<engine::Query>& queries);

  /// Phase 2: one on-policy iteration — plan with the current network,
  /// execute (with timeout safety when configured), absorb experiences,
  /// retrain. Returns total executed latency (the training bill).
  StatusOr<double> TrainIteration(const std::vector<engine::Query>& queries);

  /// Value prediction for a complete plan (diagnostics).
  double PredictLatency(const engine::Query& query,
                        const engine::PhysicalPlan& plan) const;

  size_t experience_size() const { return experiences_.size(); }

 private:
  struct Experience {
    ml::FeatureTree state;
    double log_latency;
  };

  /// Encodes a forest of subplans as one FeatureTree under a virtual root.
  ml::FeatureTree EncodeForest(
      const engine::Query& query,
      const std::vector<const engine::PlanNode*>& forest) const;

  /// Adds experiences from a completed, executed plan: every join subtree
  /// (paired with the not-yet-joined scans) is labeled with the final
  /// latency (NEO's subplan labeling).
  void AbsorbPlan(const engine::Query& query, const engine::PhysicalPlan& plan,
                  double latency);

  void TrainNetwork();

  const engine::Database* db_;
  const planrepr::PlanFeaturizer* featurizer_;
  ValueSearchOptions options_;
  mutable planrepr::PlanRegressor value_net_;
  std::deque<Experience> experiences_;
  bool trained_ = false;
  mutable Rng rng_;
};

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_VALUE_SEARCH_H_
