#include "optimizer/value_search.h"

#include <algorithm>
#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"

namespace ml4db {
namespace optimizer {

ValueSearchOptions NeoPreset() {
  ValueSearchOptions o;
  o.encoder = planrepr::EncoderKind::kTreeCnn;
  return o;
}

ValueSearchOptions RtosPreset() {
  ValueSearchOptions o;
  o.encoder = planrepr::EncoderKind::kTreeLstm;
  // RTOS improves training efficiency by bootstrapping from cost signals
  // before latency fine-tuning.
  o.bootstrap_from_cost = true;
  return o;
}

ValueSearchOptions BalsaPreset() {
  ValueSearchOptions o;
  o.encoder = planrepr::EncoderKind::kTreeCnn;
  o.bootstrap_from_cost = true;   // simulation-to-reality
  o.timeout_factor = 4.0;         // safe execution framework
  return o;
}

ValueSearchOptimizer::ValueSearchOptimizer(
    const engine::Database* db, const planrepr::PlanFeaturizer* featurizer,
    ValueSearchOptions options)
    : db_(db),
      featurizer_(featurizer),
      options_(options),
      value_net_(featurizer->dim(),
                 [&] {
                   planrepr::PlanRegressorOptions o;
                   o.encoder = options.encoder;
                   o.embedding_dim = options.embedding_dim;
                   o.output_dim = 1;
                   o.seed = options.seed;
                   return o;
                 }()),
      rng_(options.seed ^ 0xabcULL) {
  ML4DB_CHECK(db != nullptr && featurizer != nullptr);
}

ml::FeatureTree ValueSearchOptimizer::EncodeForest(
    const engine::Query& query,
    const std::vector<const engine::PlanNode*>& forest) const {
  ML4DB_CHECK(!forest.empty());
  if (forest.size() == 1) {
    return featurizer_->Encode(query, *forest[0]);
  }
  // Virtual root whose children are the subplan trees.
  ml::FeatureTree out;
  out.nodes.emplace_back();
  out.nodes[0].features.assign(featurizer_->dim(), 0.0);
  for (const engine::PlanNode* subplan : forest) {
    const ml::FeatureTree sub = featurizer_->Encode(query, *subplan);
    const int offset = static_cast<int>(out.nodes.size());
    out.nodes[0].children.push_back(offset);
    for (const auto& n : sub.nodes) {
      ml::FeatureTree::Node copy;
      copy.features = n.features;
      for (int c : n.children) copy.children.push_back(c + offset);
      out.nodes.push_back(std::move(copy));
    }
  }
  ML4DB_DCHECK(out.IsTopologicallyOrdered());
  return out;
}

StatusOr<engine::PhysicalPlan> ValueSearchOptimizer::PlanQuery(
    const engine::Query& query) const {
  if (!trained_) {
    // Cold start: the paper's point — without training data the
    // replacement optimizer has nothing to offer; fall back to the expert.
    return db_->Plan(query);
  }
  const engine::DpOptimizer& expert = db_->optimizer();
  const engine::HintSet hints;  // all operators available

  // Beam search over forests of subplans.
  struct State {
    std::vector<std::unique_ptr<engine::PlanNode>> forest;
    double score = 0.0;

    std::vector<const engine::PlanNode*> View() const {
      std::vector<const engine::PlanNode*> v;
      v.reserve(forest.size());
      for (const auto& p : forest) v.push_back(p.get());
      return v;
    }
  };

  auto clone_forest = [](const State& s, size_t skip_a, size_t skip_b,
                         std::unique_ptr<engine::PlanNode> merged) {
    State next;
    for (size_t i = 0; i < s.forest.size(); ++i) {
      if (i == skip_a || i == skip_b) continue;
      next.forest.push_back(s.forest[i]->Clone());
    }
    next.forest.push_back(std::move(merged));
    return next;
  };

  std::vector<State> beam;
  {
    State init;
    for (int slot = 0; slot < query.num_tables(); ++slot) {
      init.forest.push_back(expert.BestScan(query, slot, hints));
    }
    beam.push_back(std::move(init));
  }

  for (int join = 0; join + 1 < query.num_tables(); ++join) {
    std::vector<State> next_beam;
    for (const State& state : beam) {
      for (size_t a = 0; a < state.forest.size(); ++a) {
        for (size_t b = a + 1; b < state.forest.size(); ++b) {
          auto candidates = expert.CandidateJoins(query, *state.forest[a],
                                                  *state.forest[b], hints);
          for (auto& cand : candidates) {
            State next = clone_forest(state, a, b, std::move(cand));
            const ml::FeatureTree tree = EncodeForest(query, next.View());
            next.score = value_net_.Predict(tree)[0];
            next_beam.push_back(std::move(next));
          }
        }
      }
    }
    if (next_beam.empty()) {
      return Status::Internal("learned search found no joinable pair");
    }
    std::sort(next_beam.begin(), next_beam.end(),
              [](const State& x, const State& y) { return x.score < y.score; });
    if (next_beam.size() > options_.beam_width) {
      next_beam.resize(options_.beam_width);
    }
    beam = std::move(next_beam);
  }
  ML4DB_CHECK(!beam.empty() && beam.front().forest.size() == 1);
  return engine::PhysicalPlan(std::move(beam.front().forest[0]));
}

void ValueSearchOptimizer::AbsorbPlan(const engine::Query& query,
                                      const engine::PhysicalPlan& plan,
                                      double latency) {
  const double label = std::log1p(latency);
  // Complete plan.
  experiences_.push_back({featurizer_->Encode(query, *plan.root), label});
  // Each proper join subtree paired with the unused base-table scans.
  std::vector<const engine::PlanNode*> subtrees;
  std::vector<const engine::PlanNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const engine::PlanNode* n = stack.back();
    stack.pop_back();
    if (!n->children.empty() && n != plan.root.get()) subtrees.push_back(n);
    for (const auto& c : n->children) stack.push_back(c.get());
  }
  const engine::HintSet hints;
  for (const engine::PlanNode* sub : subtrees) {
    std::vector<const engine::PlanNode*> forest = {sub};
    std::vector<std::unique_ptr<engine::PlanNode>> extra_scans;
    const std::vector<int> covered = sub->CoveredSlots();
    for (int slot = 0; slot < query.num_tables(); ++slot) {
      if (std::find(covered.begin(), covered.end(), slot) != covered.end()) {
        continue;
      }
      extra_scans.push_back(db_->optimizer().BestScan(query, slot, hints));
      forest.push_back(extra_scans.back().get());
    }
    experiences_.push_back({EncodeForest(query, forest), label});
  }
  while (experiences_.size() > options_.max_experience) {
    experiences_.pop_front();
  }
}

void ValueSearchOptimizer::TrainNetwork() {
  if (experiences_.empty()) return;
  std::vector<ml::FeatureTree> trees;
  std::vector<ml::Vec> targets;
  trees.reserve(experiences_.size());
  for (const auto& e : experiences_) {
    trees.push_back(e.state);
    targets.push_back({e.log_latency});
  }
  for (int epoch = 0; epoch < options_.train_epochs; ++epoch) {
    value_net_.TrainEpoch(trees, targets, options_.batch_size, rng_);
  }
  trained_ = true;
  static obs::Counter* retrains =
      obs::GetCounter("ml4db.optimizer.value_search.retrains");
  retrains->Inc();
  obs::PublishEvent(obs::EventKind::kRetrain, "optimizer.value_search",
                    "value network retrained",
                    static_cast<double>(experiences_.size()));
}

Status ValueSearchOptimizer::Bootstrap(
    const std::vector<engine::Query>& queries) {
  for (const auto& query : queries) {
    ML4DB_ASSIGN_OR_RETURN(engine::PhysicalPlan plan, db_->Plan(query));
    double latency;
    if (options_.bootstrap_from_cost) {
      // Simulation: the expert cost model's estimate, no execution.
      latency = plan.est_cost;
      // Annotate actuals from estimates so featurization sees a consistent
      // tree (est fields are already populated by the optimizer).
    } else {
      auto result = db_->Execute(query, &plan);
      ML4DB_RETURN_IF_ERROR(result.status());
      latency = result->latency;
    }
    AbsorbPlan(query, plan, latency);
  }
  TrainNetwork();
  return Status::OK();
}

StatusOr<double> ValueSearchOptimizer::TrainIteration(
    const std::vector<engine::Query>& queries) {
  double total_latency = 0.0;
  for (const auto& query : queries) {
    ML4DB_ASSIGN_OR_RETURN(engine::PhysicalPlan plan, PlanQuery(query));
    engine::ExecutionLimits limits;
    double timeout_label = -1.0;
    if (options_.timeout_factor > 0) {
      ML4DB_ASSIGN_OR_RETURN(engine::PhysicalPlan expert_plan,
                             db_->Plan(query));
      auto expert_result = db_->Execute(query, &expert_plan);
      ML4DB_RETURN_IF_ERROR(expert_result.status());
      total_latency += expert_result->latency;
      limits.latency_timeout =
          expert_result->latency * options_.timeout_factor;
      timeout_label = limits.latency_timeout * 2.0;  // pessimistic penalty
    }
    auto result = db_->Execute(query, &plan, limits);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kResourceExhausted &&
          timeout_label > 0) {
        // Timed out: learn the penalty, pay the timeout budget.
        AbsorbPlan(query, plan, timeout_label);
        total_latency += limits.latency_timeout;
        continue;
      }
      return result.status();
    }
    total_latency += result->latency;
    AbsorbPlan(query, plan, result->latency);
  }
  TrainNetwork();
  return total_latency;
}

double ValueSearchOptimizer::PredictLatency(
    const engine::Query& query, const engine::PhysicalPlan& plan) const {
  const ml::FeatureTree tree = featurizer_->Encode(query, *plan.root);
  return std::expm1(std::max(0.0, value_net_.Predict(tree)[0]));
}

}  // namespace optimizer
}  // namespace ml4db
