// Bao (Marcus et al. 2021; paper §3.2, "Bandit Optimizer"): the flagship
// ML-enhanced query optimizer. Instead of replacing the optimizer, Bao
// steers it: a fixed collection of hint sets (arms) each yields a plan
// from the *expert* optimizer; a contextual multi-armed bandit with
// Thompson sampling picks the arm per query from plan features, learning
// from observed latencies. Robust by construction — the worst case is the
// expert's own plan.

#ifndef ML4DB_OPTIMIZER_BAO_H_
#define ML4DB_OPTIMIZER_BAO_H_

#include <memory>

#include "engine/database.h"
#include "ml/bayes_linear.h"

namespace ml4db {
namespace optimizer {

/// Hand-crafted plan features for the bandit's contextual model (Bao uses
/// a TreeCNN; a linear model over these plan statistics preserves the
/// bandit behaviour at a fraction of the cost and admits exact Thompson
/// sampling).
ml::Vec BaoPlanFeatures(const engine::PhysicalPlan& plan);

/// Dimension of BaoPlanFeatures vectors.
inline constexpr size_t kBaoFeatureDim = 11;

/// Contextual bandit over optimizer hint sets.
class BaoOptimizer {
 public:
  struct Options {
    double prior_alpha = 0.5;     ///< weight shrinkage
    double noise_var = 0.25;      ///< latency (log-space) noise
    double evidence_decay = 1.0;  ///< per-feedback decay (<1 adapts to drift)
    uint64_t seed = 21;
  };

  /// @param db   the database whose expert optimizer Bao steers
  /// @param arms hint-set collection (defaults to HintSet::BaoArms())
  BaoOptimizer(const engine::Database* db, Options options,
               std::vector<engine::HintSet> arms = engine::HintSet::BaoArms());

  /// The per-query decision: plans the query under every arm, Thompson-
  /// samples predicted (log) latency for each, returns the winning arm's
  /// plan and index.
  struct Choice {
    size_t arm = 0;
    engine::PhysicalPlan plan;
  };
  StatusOr<Choice> ChoosePlan(const engine::Query& query);

  /// Feedback after executing the chosen plan.
  void Feedback(const Choice& choice, double latency);

  /// Plans + executes + learns in one step; returns observed latency.
  StatusOr<double> RunAndLearn(const engine::Query& query);

  size_t num_arms() const { return arms_.size(); }
  const engine::HintSet& arm(size_t i) const { return arms_[i]; }
  size_t feedback_count() const { return feedback_count_; }

  /// Per-arm pick counts (diagnostics: arm usage distribution).
  const std::vector<size_t>& arm_picks() const { return arm_picks_; }

 private:
  const engine::Database* db_;
  Options options_;
  std::vector<engine::HintSet> arms_;
  std::vector<ml::BayesianLinearModel> models_;  // one per arm
  std::vector<size_t> arm_picks_;
  size_t feedback_count_ = 0;
  Rng rng_;
};

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_BAO_H_
