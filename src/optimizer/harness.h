// Workload evaluation harness shared by the query-optimization tests and
// benchmarks: run a list of queries through any planner, execute each
// chosen plan, and summarize the latency distribution — mean, tail, and
// regret against the expert. Tail behaviour is exactly where the paper
// says the paradigms differ.

#ifndef ML4DB_OPTIMIZER_HARNESS_H_
#define ML4DB_OPTIMIZER_HARNESS_H_

#include <functional>

#include "engine/database.h"

namespace ml4db {
namespace optimizer {

/// Any planner: query in, physical plan out.
using PlanFn =
    std::function<StatusOr<engine::PhysicalPlan>(const engine::Query&)>;

/// Latency summary over a workload.
struct WorkloadReport {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double total = 0.0;
  int planned = 0;
  int failures = 0;
  std::vector<double> latencies;  ///< per-query, successful only
};

/// Plans + executes every query; failures (planning or execution) are
/// counted, not fatal.
WorkloadReport EvaluatePlanner(const engine::Database& db,
                               const std::vector<engine::Query>& queries,
                               const PlanFn& planner);

/// The expert planner as a PlanFn.
PlanFn ExpertPlanner(const engine::Database& db);

/// Per-query latency of the best Bao arm in hindsight (the bandit's
/// oracle); used for regret reporting.
WorkloadReport OracleArmPlanner(const engine::Database& db,
                                const std::vector<engine::Query>& queries);

}  // namespace optimizer
}  // namespace ml4db

#endif  // ML4DB_OPTIMIZER_HARNESS_H_
