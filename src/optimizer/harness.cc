#include "optimizer/harness.h"

#include <algorithm>

#include "common/math_util.h"

namespace ml4db {
namespace optimizer {

namespace {

void Summarize(WorkloadReport* report) {
  if (report->latencies.empty()) return;
  report->mean = Mean(report->latencies);
  report->p50 = Quantile(report->latencies, 0.5);
  report->p95 = Quantile(report->latencies, 0.95);
  report->p99 = Quantile(report->latencies, 0.99);
  report->total = 0.0;
  for (double l : report->latencies) report->total += l;
}

}  // namespace

WorkloadReport EvaluatePlanner(const engine::Database& db,
                               const std::vector<engine::Query>& queries,
                               const PlanFn& planner) {
  WorkloadReport report;
  for (const auto& query : queries) {
    auto plan = planner(query);
    if (!plan.ok()) {
      ++report.failures;
      continue;
    }
    ++report.planned;
    auto result = db.Execute(query, &*plan);
    if (!result.ok()) {
      ++report.failures;
      continue;
    }
    report.latencies.push_back(result->latency);
  }
  Summarize(&report);
  return report;
}

PlanFn ExpertPlanner(const engine::Database& db) {
  return [&db](const engine::Query& q) { return db.Plan(q); };
}

WorkloadReport OracleArmPlanner(const engine::Database& db,
                                const std::vector<engine::Query>& queries) {
  WorkloadReport report;
  const auto arms = engine::HintSet::BaoArms();
  for (const auto& query : queries) {
    double best = -1.0;
    for (const auto& hints : arms) {
      auto plan = db.Plan(query, hints);
      if (!plan.ok()) continue;
      auto result = db.Execute(query, &*plan);
      if (!result.ok()) continue;
      if (best < 0 || result->latency < best) best = result->latency;
    }
    if (best < 0) {
      ++report.failures;
    } else {
      ++report.planned;
      report.latencies.push_back(best);
    }
  }
  Summarize(&report);
  return report;
}

}  // namespace optimizer
}  // namespace ml4db
