// EXP-P — learned index recommendation ("AI meets AI", paper refs [5, 37]):
// the classical what-if advisor trusts the optimizer's cost model, so when
// that model is miscalibrated against the hardware its picks misfire. The
// learned advisor measures real executions for a few candidates and
// generalizes through features — its recommendations track actual latency.
// Compare realized workload speed-up of both advisors, plus the exhaustive
// oracle, under calibrated and miscalibrated cost models.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "advisor/index_advisor.h"

namespace {

using namespace ml4db;

// Builds a fresh DB without indexes and a workload over it.
struct Setup {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<workload::SyntheticSchema> schema;
  std::vector<engine::Query> workload;
};

Setup MakeSetup(const engine::DatabaseOptions& dopts, uint64_t seed) {
  Setup s;
  s.db = std::make_unique<engine::Database>(dopts);
  workload::SchemaGenOptions opts;
  opts.num_dimensions = 4;
  opts.fact_rows = 12000;
  opts.dim_rows = 800;
  opts.seed = seed;
  opts.build_indexes = false;
  auto schema = workload::BuildSyntheticDb(s.db.get(), opts);
  ML4DB_CHECK_MSG(schema.ok(), "schema build failed");
  s.schema = std::make_unique<workload::SyntheticSchema>(std::move(*schema));
  workload::QueryGenOptions qopts;
  qopts.min_tables = 2;
  qopts.max_tables = 4;
  qopts.seed = seed ^ 0xadULL;
  workload::QueryGenerator gen(s.schema.get(), qopts);
  s.workload = gen.Batch(30);
  return s;
}

// Applies `rec`, measures, and reverts.
double RealizedLatency(engine::Database* db,
                       const std::vector<engine::Query>& workload,
                       const advisor::Recommendation& rec) {
  ML4DB_CHECK(advisor::ApplyRecommendation(db, rec).ok());
  auto lat = advisor::MeasureWorkloadLatency(*db, workload);
  ML4DB_CHECK(lat.ok());
  for (const auto& cand : rec.indexes) {
    auto t = db->catalog().GetTable(cand.table);
    if (t.ok()) (*t)->DropIndex(cand.column);
  }
  return *lat;
}

void RunScenario(const char* name, const engine::DatabaseOptions& dopts,
                 uint64_t seed) {
  Setup s = MakeSetup(dopts, seed);
  auto baseline = advisor::MeasureWorkloadLatency(*s.db, s.workload);
  ML4DB_CHECK(baseline.ok());

  constexpr size_t kBudget = 3;  // indexes to pick
  advisor::WhatIfAdvisor what_if(s.db.get());
  auto wi_rec = what_if.Recommend(s.workload, kBudget);
  ML4DB_CHECK(wi_rec.ok());
  const double wi_lat = RealizedLatency(s.db.get(), s.workload, *wi_rec);

  advisor::LearnedAdvisor::Options lopts;
  lopts.explore_candidates = 8;
  advisor::LearnedAdvisor learned(s.db.get(), lopts);
  auto l_rec = learned.Recommend(s.workload, kBudget);
  ML4DB_CHECK(l_rec.ok());
  const double l_lat = RealizedLatency(s.db.get(), s.workload, *l_rec);

  // Exhaustive reference: measure EVERY candidate's standalone benefit,
  // then greedy by measured value (no interaction modeling).
  advisor::LearnedAdvisor::Options oopts;
  oopts.explore_candidates = 1000;  // measure everything
  advisor::LearnedAdvisor oracle(s.db.get(), oopts);
  auto o_rec = oracle.Recommend(s.workload, kBudget);
  ML4DB_CHECK(o_rec.ok());
  const double o_lat = RealizedLatency(s.db.get(), s.workload, *o_rec);

  bench::PrintHeader(std::string("EXP-P index advisor, ") + name);
  bench::Table table({"advisor", "indexes", "measured_cands",
                      "workload_latency", "speedup"});
  table.AddRow({"none (baseline)", "0", "0", bench::Fmt(*baseline, 0), "1.00"});
  auto row = [&](const char* n, const advisor::Recommendation& rec,
                 size_t measured, double lat) {
    std::string names;
    for (const auto& c : rec.indexes) names += c.Name() + " ";
    table.AddRow({n, names.empty() ? "-" : names, std::to_string(measured),
                  bench::Fmt(lat, 0), bench::Fmt(*baseline / lat, 2)});
  };
  row("what-if (cost model)", *wi_rec, 0, wi_lat);
  row("learned (executions)", *l_rec, 8, l_lat);
  row("exhaustive-singleton", *o_rec, oracle.measurements(), o_lat);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("index_advisor", &argc, argv);
  // Calibrated: the cost model matches the hardware; what-if should do
  // fine. Miscalibrated: random I/O is 3x pricier than modeled — what-if
  // over-recommends index-nested-loop enablers; the learned advisor sees
  // through it.
  RunScenario("calibrated cost model", engine::DatabaseOptions{}, 171);
  RunScenario("miscalibrated cost model", bench::MiscalibratedHardware(), 171);
  std::printf(
      "\nShape check (paper [5]/[37]): with a calibrated cost model the "
      "what-if advisor is already good; under miscalibration the learned "
      "advisor (8 measured candidates) matches or beats it by ranking on "
      "realized executions, approaching exhaustive measurement at a "
      "fraction of its cost.\n");
  return 0;
}
