// EXP-O — the remaining two learned-optimizer designs (paper §3.2):
//   * LEON: ML-aided DP — keeps the expert search, re-ranks sub-plans with
//     a pairwise model, falls back to the expert when unconfident. Safe
//     like Bao, but aimed at fixing the expert's *ranking* mistakes.
//   * Balsa: learns WITHOUT expert demonstrations — bootstraps from the
//     cost model ("simulation") and fine-tunes on execution under a
//     timeout safety net. Compare its training bill and outcome against a
//     NEO-style expert bootstrap.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "optimizer/harness.h"
#include "optimizer/leon.h"
#include "optimizer/value_search.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("leon_balsa", &argc, argv);
  using namespace ml4db;
  using namespace ml4db::optimizer;
  bench::BenchDb bdb =
      bench::MakeBenchDb(151, 30000, 1500, 4, bench::MiscalibratedHardware());
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});
  const auto test = bdb.gen->Batch(60);
  const WorkloadReport expert = EvaluatePlanner(db, test, ExpertPlanner(db));

  bench::PrintHeader("EXP-O LEON: ML-aided DP with ranking + fallback");
  bench::Table leon_table(
      {"config", "pairs", "mean", "p99", "total", "vs_expert"});
  leon_table.AddRow({"expert", "0", bench::Fmt(expert.mean, 1),
                     bench::Fmt(expert.p99, 1), bench::Fmt(expert.total, 0),
                     "1.000"});
  {
    LeonOptimizer::Options lopts;
    lopts.min_pairs = 30;
    LeonOptimizer leon(&db, &featurizer, lopts);
    // Untrained = expert fallback.
    const WorkloadReport cold = EvaluatePlanner(
        db, test, [&](const engine::Query& q) { return leon.PlanQuery(q); });
    leon_table.AddRow({"leon(untrained=fallback)", "0",
                       bench::Fmt(cold.mean, 1), bench::Fmt(cold.p99, 1),
                       bench::Fmt(cold.total, 0),
                       bench::Fmt(cold.total / expert.total, 3)});
    double bill = 0.0;
    for (int round = 0; round < 6; ++round) {
      auto b = leon.TrainRound(bdb.gen->Batch(30));
      ML4DB_CHECK(b.ok());
      bill += *b;
    }
    const WorkloadReport warm = EvaluatePlanner(
        db, test, [&](const engine::Query& q) { return leon.PlanQuery(q); });
    leon_table.AddRow({"leon(trained)", std::to_string(leon.pairs_absorbed()),
                       bench::Fmt(warm.mean, 1), bench::Fmt(warm.p99, 1),
                       bench::Fmt(warm.total, 0),
                       bench::Fmt(warm.total / expert.total, 3)});
    std::printf("LEON training bill (executed latency): %.0f\n", bill);
  }
  leon_table.Print();

  bench::PrintHeader(
      "EXP-O Balsa: sim-to-real bootstrap + timeout-safe fine-tuning");
  bench::Table balsa_table(
      {"optimizer", "bootstrap", "train_bill", "mean", "p99", "vs_expert"});
  const auto boot_queries = bdb.gen->Batch(80);
  const auto iter_queries = bdb.gen->Batch(40);
  {
    // NEO: expert bootstrap = must execute the bootstrap workload.
    ValueSearchOptions opts = NeoPreset();
    opts.train_epochs = 8;
    ValueSearchOptimizer neo(&db, &featurizer, opts);
    double boot_bill = 0.0;
    for (const auto& q : boot_queries) {
      auto plan = db.Plan(q);
      ML4DB_CHECK(plan.ok());
      auto r = db.Execute(q, &*plan);
      ML4DB_CHECK(r.ok());
      boot_bill += r->latency;
    }
    ML4DB_CHECK(neo.Bootstrap(boot_queries).ok());
    auto it = neo.TrainIteration(iter_queries);
    ML4DB_CHECK(it.ok());
    const WorkloadReport r = EvaluatePlanner(
        db, test, [&](const engine::Query& q) { return neo.PlanQuery(q); });
    balsa_table.AddRow({"neo", "expert-latency",
                        bench::Fmt(boot_bill + *it, 0), bench::Fmt(r.mean, 1),
                        bench::Fmt(r.p99, 1),
                        bench::Fmt(r.total / expert.total, 3)});
  }
  {
    // Balsa: cost-model bootstrap is free; only fine-tuning executes, and
    // the timeout caps each disaster.
    ValueSearchOptions opts = BalsaPreset();
    opts.train_epochs = 8;
    ValueSearchOptimizer balsa(&db, &featurizer, opts);
    ML4DB_CHECK(balsa.Bootstrap(boot_queries).ok());  // simulation only
    auto it = balsa.TrainIteration(iter_queries);
    ML4DB_CHECK(it.ok());
    const WorkloadReport r = EvaluatePlanner(
        db, test, [&](const engine::Query& q) { return balsa.PlanQuery(q); });
    balsa_table.AddRow({"balsa", "cost-sim (free)", bench::Fmt(*it, 0),
                        bench::Fmt(r.mean, 1), bench::Fmt(r.p99, 1),
                        bench::Fmt(r.total / expert.total, 3)});
  }
  balsa_table.Print();
  std::printf(
      "\nShape check (paper): LEON never regresses below the expert "
      "(fallback) and improves with ranking pairs; Balsa reaches NEO-like "
      "quality with a far smaller execution bill (its bootstrap is "
      "simulated) and no unbounded stalls (timeout).\n");
  return 0;
}
