// EXP-H — adapting the optimizer to drift (paper §3.2 + §3.3(2)): a
// workload whose data shifts mid-stream. Bao with evidence decay adapts;
// a frozen NEO-style model trained pre-drift degrades; the expert is the
// stable reference. Reported as windowed mean latency over the stream.
//
// A fourth learned line, neo_retrain, re-bootstraps the value-search model
// on post-drift feedback as a BACKGROUND job (drift::RetrainScheduler):
// the stream keeps serving the frozen model until the replacement lands,
// then swaps — the paper's §4 point that retraining must not stall
// serving. With ML4DB_THREADS=1 the fit runs inline at schedule time.

#include <deque>

#include "bench/bench_util.h"
#include "drift/retrain_scheduler.h"
#include "optimizer/bao.h"
#include "optimizer/harness.h"
#include "optimizer/value_search.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("qo_drift", &argc, argv);
  using namespace ml4db;
  using namespace ml4db::optimizer;
  bench::BenchDb bdb =
      bench::MakeBenchDb(71, 30000, 1500, 4, bench::MiscalibratedHardware());
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});

  // Pre-train both learned optimizers before the drift.
  BaoOptimizer::Options bao_opts;
  bao_opts.evidence_decay = 0.995;  // sliding-window-style adaptation
  BaoOptimizer bao(&db, bao_opts);
  BaoOptimizer bao_frozen(&db, BaoOptimizer::Options{});  // no decay
  ValueSearchOptions nopts = NeoPreset();
  nopts.train_epochs = 8;
  ValueSearchOptimizer neo(&db, &featurizer, nopts);

  for (const auto& q : bdb.gen->Batch(80)) {
    ML4DB_CHECK(bao.RunAndLearn(q).ok());
    ML4DB_CHECK(bao_frozen.RunAndLearn(q).ok());
  }
  ML4DB_CHECK(neo.Bootstrap(bdb.gen->Batch(80)).ok());

  // Background NEO re-bootstrap, swapped in when the fit lands.
  drift::RetrainScheduler::Options sopts;
  sopts.module = "drift.qo";
  drift::RetrainScheduler sched(sopts);
  std::shared_ptr<ValueSearchOptimizer> neo_retrained;  // null = still frozen

  bench::PrintHeader("EXP-H latency stream with mid-stream data drift");
  bench::Table table({"phase", "window", "expert", "bao_decay", "bao_frozen",
                      "neo_frozen", "neo_retrain"});

  auto run_window = [&](const std::string& phase, int window_id) {
    const auto queries = bdb.gen->Batch(30);
    double e = 0, b = 0, bf = 0, n = 0, nr2 = 0;
    for (const auto& q : queries) {
      for (auto& ready : sched.TakeReady()) {
        neo_retrained =
            std::static_pointer_cast<ValueSearchOptimizer>(ready.model);
      }
      auto er = db.Run(q);
      ML4DB_CHECK(er.ok());
      e += er->latency;
      auto lat = bao.RunAndLearn(q);
      ML4DB_CHECK(lat.ok());
      b += *lat;
      auto latf = bao_frozen.RunAndLearn(q);
      ML4DB_CHECK(latf.ok());
      bf += *latf;
      auto plan = neo.PlanQuery(q);
      ML4DB_CHECK(plan.ok());
      auto nr = db.Execute(q, &*plan);
      ML4DB_CHECK(nr.ok());
      n += nr->latency;
      if (neo_retrained == nullptr) {
        nr2 += nr->latency;  // replacement not landed: still serving frozen
      } else {
        auto plan2 = neo_retrained->PlanQuery(q);
        ML4DB_CHECK(plan2.ok());
        auto r2 = db.Execute(q, &*plan2);
        ML4DB_CHECK(r2.ok());
        nr2 += r2->latency;
      }
    }
    const double cnt = static_cast<double>(queries.size());
    table.AddRow({phase, std::to_string(window_id), bench::Fmt(e / cnt, 1),
                  bench::Fmt(b / cnt, 1), bench::Fmt(bf / cnt, 1),
                  bench::Fmt(n / cnt, 1), bench::Fmt(nr2 / cnt, 1)});
  };

  // Trace one expert-planned query end-to-end (optimize span + executor
  // span tree); lands in the --json export and prints as a flame tree.
  {
    const engine::Query traced_query = bdb.gen->Batch(1).front();
    obs::QueryTrace trace;
    trace.label = "qo_drift sample query";
    obs::TraceScope scope(&trace);
    ML4DB_CHECK(db.Run(traced_query).ok());
    bench::RecordTrace(trace);
    std::printf("\n%s\n", trace.ToText().c_str());
  }

  run_window("pre-drift", 1);
  run_window("pre-drift", 2);
  // Data drift: grow the fact table 2x with shifted attribute values and
  // refresh statistics (the expert adapts through ANALYZE; learned models
  // must adapt through feedback).
  ML4DB_CHECK(
      workload::InjectDataDrift(&db, bdb.schema(), 30000, 0.15, 72, true).ok());
  // Drift detected: schedule the NEO re-bootstrap on post-drift feedback.
  // The bootstrap batch is drawn here (the generator is single-threaded);
  // the fit itself runs on the pool while windows 3+ keep serving.
  {
    const auto drift_batch = bdb.gen->Batch(80);
    sched.Schedule("neo-post-drift", [&db, &featurizer, nopts, drift_batch]() {
      auto m =
          std::make_shared<ValueSearchOptimizer>(&db, &featurizer, nopts);
      ML4DB_CHECK(m->Bootstrap(drift_batch).ok());
      return std::static_pointer_cast<void>(m);
    });
  }
  run_window("post-drift", 3);
  run_window("post-drift", 4);
  run_window("post-drift", 5);
  table.Print();

  std::printf(
      "\nShape check (paper): after the drift all learned lines jump; "
      "bao_decay re-converges toward the expert within a few windows, the "
      "frozen models stay degraded longer.\n");
  return 0;
}
