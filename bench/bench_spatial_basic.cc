// EXP-C — learned spatial indexes vs R-tree (paper §3.2): range-query cost
// across selectivities and KNN behaviour for R-tree (exact), ZM-index
// (exact range, APPROXIMATE knn — the generalization limitation) and LISA
// (exact). Reports node/shard accesses and KNN recall.

#include <set>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "spatial/lisa_index.h"
#include "spatial/rtree.h"
#include "spatial/zm_index.h"
#include "workload/spatial_gen.h"

namespace {

using namespace ml4db;
using namespace ml4db::spatial;

Rect ToRect(const workload::Rect2& r) { return {r.xlo, r.ylo, r.xhi, r.yhi}; }

constexpr size_t kPoints = 500'000;

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("spatial_basic", &argc, argv);
  using namespace ml4db;
  for (auto dist : {workload::SpatialDistribution::kUniform,
                    workload::SpatialDistribution::kClustered}) {
    workload::SpatialGenOptions opts;
    opts.distribution = dist;
    opts.seed = 11;
    const auto pts = workload::GeneratePoints(kPoints, opts);
    std::vector<Point> points;
    std::vector<uint64_t> ids;
    std::vector<SpatialEntry> entries;
    for (size_t i = 0; i < pts.size(); ++i) {
      points.push_back({pts[i].x, pts[i].y});
      ids.push_back(i);
      entries.push_back({Rect::FromPoint({pts[i].x, pts[i].y}), i});
    }

    Stopwatch sw;
    RTree rtree;
    rtree.BulkLoadStr(entries);
    const double rtree_build = sw.ElapsedSeconds();
    sw.Reset();
    ZmIndex zm(32);
    ML4DB_CHECK(zm.Build(points, ids).ok());
    const double zm_build = sw.ElapsedSeconds();
    sw.Reset();
    LisaIndex lisa(64);
    ML4DB_CHECK(lisa.Build(points, ids).ok());
    const double lisa_build = sw.ElapsedSeconds();

    bench::PrintHeader(std::string("EXP-C range queries, ") +
                       workload::SpatialDistributionName(dist) + " points (" +
                       std::to_string(kPoints) + ")");
    std::printf("build seconds: rtree=%.2f zm=%.2f lisa=%.2f\n", rtree_build,
                zm_build, lisa_build);
    bench::Table range_table({"selectivity", "rtree_acc", "zm_acc",
                              "lisa_acc", "results_avg"});
    for (double sel : {0.0001, 0.001, 0.01, 0.05}) {
      const auto queries = workload::GenerateRangeQueries(200, sel, opts);
      double acc_r = 0, acc_z = 0, acc_l = 0, results = 0;
      for (const auto& wq : queries) {
        const Rect q = ToRect(wq);
        const auto sr = rtree.RangeQuery(q);
        const auto sz = zm.RangeQuery(q);
        const auto sl = lisa.RangeQuery(q);
        ML4DB_CHECK(sr.results.size() == sz.results.size());
        ML4DB_CHECK(sr.results.size() == sl.results.size());
        acc_r += static_cast<double>(sr.nodes_accessed);
        acc_z += static_cast<double>(sz.nodes_accessed);
        acc_l += static_cast<double>(sl.nodes_accessed);
        results += static_cast<double>(sr.results.size());
      }
      const double n = static_cast<double>(queries.size());
      range_table.AddRow({bench::Fmt(sel, 4), bench::Fmt(acc_r / n, 1),
                          bench::Fmt(acc_z / n, 1), bench::Fmt(acc_l / n, 1),
                          bench::FmtInt(results / n)});
    }
    range_table.Print();

    // KNN: the ZM index is approximate — the paper's generalization limit.
    bench::PrintHeader(std::string("EXP-C KNN, ") +
                       workload::SpatialDistributionName(dist));
    bench::Table knn_table({"k", "rtree_acc", "zm_acc", "lisa_acc",
                            "zm_recall", "lisa_recall"});
    const auto knn_pts = workload::GenerateKnnQueries(100, opts);
    for (size_t k : {1u, 10u, 50u}) {
      double acc_r = 0, acc_z = 0, acc_l = 0, rec_z = 0, rec_l = 0;
      for (const auto& qp : knn_pts) {
        const Point p{qp.x, qp.y};
        const auto truth = rtree.KnnQuery(p, k);  // exact
        const auto got_z = zm.KnnQuery(p, k);
        const auto got_l = lisa.KnnQuery(p, k);
        acc_r += static_cast<double>(truth.nodes_accessed);
        acc_z += static_cast<double>(got_z.nodes_accessed);
        acc_l += static_cast<double>(got_l.nodes_accessed);
        const std::set<uint64_t> t(truth.results.begin(), truth.results.end());
        size_t hz = 0, hl = 0;
        for (uint64_t id : got_z.results) hz += t.count(id);
        for (uint64_t id : got_l.results) hl += t.count(id);
        rec_z += static_cast<double>(hz) / static_cast<double>(k);
        rec_l += static_cast<double>(hl) / static_cast<double>(k);
      }
      const double n = static_cast<double>(knn_pts.size());
      knn_table.AddRow({std::to_string(k), bench::Fmt(acc_r / n, 1),
                        bench::Fmt(acc_z / n, 1), bench::Fmt(acc_l / n, 1),
                        bench::Fmt(rec_z / n, 3), bench::Fmt(rec_l / n, 3)});
    }
    knn_table.Print();
  }
  std::printf(
      "\nShape check (paper): learned spatial indexes need fewer accesses on "
      "selective range queries; ZM KNN recall < 1.0 (approximate results), "
      "LISA and R-tree stay exact.\n");
  return 0;
}
