// EXP-L — pretrained plan models (paper §3.1): pretrain an encoder with
// execution-free self-supervision across several databases, then fine-tune
// a latency head with K labeled samples on an unseen database. Sweep K;
// compare against the identical architecture trained from scratch on the
// same K shots. The paper's promise: pretraining buys few-shot accuracy.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "pretrain/pretrained_model.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("pretrain_fewshot", &argc, argv);
  using namespace ml4db;
  planrepr::FeatureConfig config;

  // Pretraining pool from three source databases.
  std::vector<pretrain::PretrainSample> pool;
  std::vector<bench::BenchDb> sources;
  for (uint64_t seed : {141ULL, 142ULL, 143ULL}) {
    sources.push_back(bench::MakeBenchDb(seed, 15000, 800, 4));
    bench::BenchDb& s = sources.back();
    planrepr::PlanFeaturizer fz(s.db.get(), config);
    auto samples =
        pretrain::MakePretrainSamples(*s.db, fz, s.gen->Batch(150));
    ML4DB_CHECK(samples.ok());
    pool.insert(pool.end(), samples->begin(), samples->end());
  }

  // Target database (unseen during pretraining) with labeled executions.
  bench::BenchDb target = bench::MakeBenchDb(149, 20000, 1000, 4);
  planrepr::PlanFeaturizer fz(target.db.get(), config);
  costest::CollectOptions copts;
  copts.num_queries = 260;
  auto collected = costest::CollectSamples(
      *target.db, fz, [&] { return target.gen->Next(); }, copts);
  ML4DB_CHECK(collected.ok());
  const auto& samples = collected->samples;
  const size_t test_start = 200;

  auto eval = [&](pretrain::PretrainedPlanModel& m) {
    std::vector<double> pred, truth;
    for (size_t i = test_start; i < samples.size(); ++i) {
      pred.push_back(m.EstimateLatency(samples[i].tree));
      truth.push_back(samples[i].latency);
    }
    return ml4db::KendallTau(pred, truth);
  };

  bench::PrintHeader("EXP-L few-shot latency estimation on an unseen DB");
  bench::Table table({"K_shots", "pretrained_tau", "scratch_tau", "delta"});
  for (size_t k : {8u, 16u, 32u, 64u, 128u}) {
    std::vector<costest::PlanSample> shots(samples.begin(),
                                           samples.begin() + k);
    pretrain::PretrainedPlanModel::Options popts;
    popts.pretrain_epochs = 15;
    popts.finetune_epochs = 40;
    popts.encoder = planrepr::EncoderKind::kTreeLstm;

    pretrain::PretrainedPlanModel pretrained(fz.dim(), popts);
    pretrained.Pretrain(pool);
    pretrained.FineTune(shots);
    pretrain::PretrainedPlanModel scratch(fz.dim(), popts);
    scratch.FineTune(shots);

    const double tp = eval(pretrained);
    const double ts = eval(scratch);
    table.AddRow({std::to_string(k), bench::Fmt(tp, 3), bench::Fmt(ts, 3),
                  bench::Fmt(tp - ts, 3)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): the pretrained encoder dominates at small K "
      "(positive delta) and the gap narrows as K grows — pretraining "
      "substitutes for scarce labeled executions.\n");
  return 0;
}
