// EXP-G — the central paradigm experiment (paper §3.2, learned query
// optimization): replacement (NEO-style value search) vs ML-enhanced (Bao
// bandit) vs the expert DP optimizer, as a function of training budget.
// Reports mean and tail latency plus the hindsight-best-arm oracle.
// Expected shape: NEO suffers a cold start and tail regressions at small
// budgets and only catches up with lots of training; Bao is safe from the
// start and improves the tail quickly.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "optimizer/bao.h"
#include "optimizer/harness.h"
#include "optimizer/value_search.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("qo_paradigms", &argc, argv);
  using namespace ml4db;
  using namespace ml4db::optimizer;
  bench::BenchDb bdb =
      bench::MakeBenchDb(61, 30000, 1500, 4, bench::MiscalibratedHardware());
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});

  const auto test = bdb.gen->Batch(60);
  const WorkloadReport expert = EvaluatePlanner(db, test, ExpertPlanner(db));
  const WorkloadReport oracle = OracleArmPlanner(db, test);

  bench::PrintHeader("EXP-G expert & oracle reference");
  std::printf("expert:  mean=%.1f p50=%.1f p99=%.1f total=%.0f\n", expert.mean,
              expert.p50, expert.p99, expert.total);
  std::printf("oracle (best arm per query): mean=%.1f p99=%.1f total=%.0f\n",
              oracle.mean, oracle.p99, oracle.total);

  bench::PrintHeader("EXP-G learned optimizers vs training budget");
  bench::Table table({"optimizer", "train_queries", "mean", "p50", "p99",
                      "total", "vs_expert"});
  auto add_report = [&](const std::string& name, int budget,
                        const WorkloadReport& r) {
    table.AddRow({name, std::to_string(budget), bench::Fmt(r.mean, 1),
                  bench::Fmt(r.p50, 1), bench::Fmt(r.p99, 1),
                  bench::Fmt(r.total, 0), bench::Fmt(r.total / expert.total, 3)});
  };

  for (int budget : {0, 30, 120, 480}) {
    // --- NEO (replacement) --- (capped at 120 training queries: its
    // per-query search and retraining dominate wall-clock; the paper's
    // point about data hunger is visible well before that)
    if (budget <= 120) {
      ValueSearchOptions opts = NeoPreset();
      opts.train_epochs = 10;
      ValueSearchOptimizer neo(&db, &featurizer, opts);
      if (budget > 0) {
        ML4DB_CHECK(neo.Bootstrap(bdb.gen->Batch(budget)).ok());
        auto it = neo.TrainIteration(bdb.gen->Batch(budget / 2));
        ML4DB_CHECK(it.ok());
      }
      const WorkloadReport r = EvaluatePlanner(
          db, test, [&](const engine::Query& q) { return neo.PlanQuery(q); });
      add_report(budget == 0 ? "neo(cold=expert-fallback)" : "neo", budget, r);
    }
    // --- Bao (ML-enhanced) ---
    {
      BaoOptimizer bao(&db, BaoOptimizer::Options{});
      for (const auto& q : bdb.gen->Batch(budget)) {
        ML4DB_CHECK(bao.RunAndLearn(q).ok());
      }
      WorkloadReport r;
      for (const auto& q : test) {
        auto choice = bao.ChoosePlan(q);
        ML4DB_CHECK(choice.ok());
        auto result = db.Execute(q, &choice->plan);
        ML4DB_CHECK(result.ok());
        r.latencies.push_back(result->latency);
        ++r.planned;
      }
      // Summarize via EvaluatePlanner-equivalent math.
      r.mean = Mean(r.latencies);
      r.p50 = Quantile(r.latencies, 0.5);
      r.p95 = Quantile(r.latencies, 0.95);
      r.p99 = Quantile(r.latencies, 0.99);
      for (double l : r.latencies) r.total += l;
      add_report("bao", budget, r);
    }
  }
  table.Print();

  std::printf(
      "\nShape check (paper): bao is never catastrophically worse than the "
      "expert (vs_expert near or below 1 at every budget) and improves the "
      "tail; neo equals the expert cold (fallback), and with small budgets "
      "its own search can regress before enough experience accumulates.\n");
  return 0;
}
