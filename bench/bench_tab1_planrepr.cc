// TAB1 — regenerates Table 1 of the paper: the query-plan-representation
// landscape. Each tree-model family is paired with the ML4DB application
// it was proposed for, and — going beyond the paper's static table — each
// (encoder, task) pair is actually trained and scored on our substrate:
// cost estimation (q-error / rank correlation), cardinality estimation,
// and plan ranking, per the comparative study [57] the tutorial discusses.

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "costest/collector.h"
#include "ml/metrics.h"
#include "planrepr/plan_regressor.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("tab1_planrepr", &argc, argv);
  using namespace ml4db;
  using planrepr::EncoderKind;

  bench::PrintHeader("TAB1 (paper): representation methods in ML4DB studies");
  {
    bench::Table t({"method", "application", "tree model"});
    t.AddRow({"AVGDL", "View Selection", "LSTM"});
    t.AddRow({"AIMeetsAI", "Index Selection", "Feature Vector"});
    t.AddRow({"ReJOIN", "Join Order Selection", "Feature Vector"});
    t.AddRow({"BAO", "Optimizer", "TreeCNN"});
    t.AddRow({"NEO", "Optimizer", "TreeCNN"});
    t.AddRow({"Prestroid", "Cost Estimation", "TreeCNN"});
    t.AddRow({"E2E-Cost", "Cost/Card Estimation", "TreeLSTM"});
    t.AddRow({"RTOS", "Join Order Selection", "TreeLSTM"});
    t.AddRow({"Plan-Cost", "Cost Estimation", "TreeRNN"});
    t.AddRow({"QueryFormer", "General Purpose", "Transformer"});
    t.Print();
  }

  bench::BenchDb bdb = bench::MakeBenchDb(101, 20000, 1000, 4);
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});

  costest::CollectOptions copts;
  copts.num_queries = 220;
  auto collected = costest::CollectSamples(
      db, featurizer, [&] { return bdb.gen->Next(); }, copts);
  ML4DB_CHECK(collected.ok());
  const auto& samples = collected->samples;
  const size_t train_n = 160;

  bench::PrintHeader(
      "TAB1 (measured): every encoder family on every task, our substrate");
  bench::Table table({"tree_model", "cost_qerr_p50", "cost_tau",
                      "card_qerr_p50", "rank_acc", "params", "train_s"});
  for (EncoderKind kind :
       {EncoderKind::kFeatureVector, EncoderKind::kDfsLstm,
        EncoderKind::kTreeCnn, EncoderKind::kTreeLstm,
        EncoderKind::kTreeAttention}) {
    planrepr::PlanRegressorOptions opts;
    opts.encoder = kind;
    opts.embedding_dim = 24;
    opts.output_dim = 2;  // [log latency, log cardinality]
    opts.seed = 103;
    planrepr::PlanRegressor model(featurizer.dim(), opts);

    std::vector<ml::FeatureTree> trees;
    std::vector<ml::Vec> targets;
    for (size_t i = 0; i < train_n; ++i) {
      trees.push_back(samples[i].tree);
      targets.push_back(
          {std::log1p(samples[i].latency), std::log1p(samples[i].cardinality)});
    }
    Rng rng(104);
    Stopwatch sw;
    for (int e = 0; e < 25; ++e) model.TrainEpoch(trees, targets, 16, rng);
    const double train_s = sw.ElapsedSeconds();

    std::vector<double> cost_pred, cost_truth, card_pred, card_truth;
    for (size_t i = train_n; i < samples.size(); ++i) {
      const ml::Vec out = model.Predict(samples[i].tree);
      cost_pred.push_back(std::expm1(std::max(0.0, out[0])));
      card_pred.push_back(std::expm1(std::max(0.0, out[1])));
      cost_truth.push_back(samples[i].latency);
      card_truth.push_back(samples[i].cardinality);
    }
    // Plan ranking accuracy: fraction of held-out pairs ordered correctly
    // by predicted cost.
    int correct = 0, pairs = 0;
    for (size_t i = 0; i + 1 < cost_pred.size(); i += 2) {
      if (cost_truth[i] == cost_truth[i + 1]) continue;
      ++pairs;
      correct += (cost_pred[i] < cost_pred[i + 1]) ==
                 (cost_truth[i] < cost_truth[i + 1]);
    }
    table.AddRow(
        {planrepr::EncoderKindName(kind),
         bench::Fmt(ml::SummarizeQErrors(cost_pred, cost_truth).median, 2),
         bench::Fmt(KendallTau(cost_pred, cost_truth), 3),
         bench::Fmt(ml::SummarizeQErrors(card_pred, card_truth).median, 2),
         bench::Fmt(pairs ? static_cast<double>(correct) / pairs : 0.0, 3),
         std::to_string(model.NumParams()), bench::Fmt(train_s, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper/[57]): no single tree model dominates every "
      "task; learnable tree aggregation (tree_lstm / tree_cnn / attention) "
      "beats the flat feature vector on rank correlation.\n");
  return 0;
}
