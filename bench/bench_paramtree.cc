// EXP-M — ParamTree (paper §3.2): a properly tuned formula cost model
// rivals learned cost models. Start from a miscalibrated planner (wrong
// R-params => wrong plan choices), fit the R-params from executions, and
// compare workload latency before/after against the true-parameter planner
// (upper bound). Also reports parameter recovery.

#include "bench/bench_util.h"
#include "optimizer/harness.h"
#include "optimizer/paramtree.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("paramtree", &argc, argv);
  using namespace ml4db;
  using namespace ml4db::optimizer;

  // Miscalibrated planner: random I/O looks free, hashing looks terrible —
  // the planner will prefer index nested loops everywhere.
  engine::DatabaseOptions dopts;
  dopts.planner_params.rand_page_cost = 0.001;
  dopts.planner_params.hash_build_cost = 5.0;
  dopts.planner_params.hash_probe_cost = 1.0;
  bench::BenchDb bdb = bench::MakeBenchDb(91, 30000, 1500, 4, dopts);
  engine::Database& db = *bdb.db;

  const auto train = bdb.gen->Batch(40);
  const auto test = bdb.gen->Batch(60);

  bench::PrintHeader("EXP-M ParamTree: R-param calibration");
  const WorkloadReport before = EvaluatePlanner(db, test, ExpertPlanner(db));

  ParamTreeTuner tuner;
  ML4DB_CHECK(tuner.CollectFrom(db, train).ok());
  auto fitted = tuner.Fit();
  ML4DB_CHECK(fitted.ok());
  db.SetPlannerParams(*fitted);
  const WorkloadReport after = EvaluatePlanner(db, test, ExpertPlanner(db));

  // Upper bound: planner given the exact true constants.
  db.SetPlannerParams(engine::CostParams{});
  const WorkloadReport truth = EvaluatePlanner(db, test, ExpertPlanner(db));

  bench::Table table({"planner", "mean", "p50", "p99", "total"});
  table.AddRow({"miscalibrated", bench::Fmt(before.mean, 1),
                bench::Fmt(before.p50, 1), bench::Fmt(before.p99, 1),
                bench::Fmt(before.total, 0)});
  table.AddRow({"paramtree-tuned", bench::Fmt(after.mean, 1),
                bench::Fmt(after.p50, 1), bench::Fmt(after.p99, 1),
                bench::Fmt(after.total, 0)});
  table.AddRow({"true-params (bound)", bench::Fmt(truth.mean, 1),
                bench::Fmt(truth.p50, 1), bench::Fmt(truth.p99, 1),
                bench::Fmt(truth.total, 0)});
  table.Print();

  bench::PrintHeader("recovered R-params (true values are the engine defaults)");
  bench::Table params({"param", "true", "fitted"});
  engine::CostParams truth_params;
  for (size_t i = 0; i < engine::CostParams::kNumParams; ++i) {
    params.AddRow({engine::CostParams::Names()[i],
                   bench::Fmt(truth_params.Get(i), 4),
                   bench::Fmt(fitted->Get(i), 4)});
  }
  params.Print();
  std::printf("formula fit relative error: %.4f (per-op: ",
              tuner.RelativeError(*fitted));
  for (double e : tuner.PerOperatorError(*fitted)) std::printf("%.3f ", e);
  std::printf(")\n");
  std::printf(
      "\nShape check (paper): tuned total ≈ true-params total << "
      "miscalibrated total; fitted constants match the engine's true "
      "constants closely.\n");
  return 0;
}
