// EXP-I — the comparative-study finding (paper §3.1, ref [57]): the choice
// of FEATURE ENCODING often matters more than the choice of tree model.
// Grid: {feature channel subsets} × {tree models} on the cost-estimation
// task; report rank correlation. The spread across feature configs should
// exceed the spread across encoders.

#include "bench/bench_util.h"
#include "costest/collector.h"
#include "ml/metrics.h"
#include "planrepr/plan_regressor.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("planrepr_ablation", &argc, argv);
  using namespace ml4db;
  using planrepr::EncoderKind;
  using planrepr::FeatureConfig;

  bench::BenchDb bdb = bench::MakeBenchDb(111, 20000, 1000, 4);
  engine::Database& db = *bdb.db;

  std::vector<FeatureConfig> configs;
  {
    FeatureConfig semantic_only;
    semantic_only.statistics = semantic_only.histogram =
        semantic_only.sample = false;
    configs.push_back(semantic_only);
    FeatureConfig stats_only;
    stats_only.semantic = stats_only.histogram = stats_only.sample = false;
    configs.push_back(stats_only);
    FeatureConfig sem_stats;
    sem_stats.histogram = sem_stats.sample = false;
    configs.push_back(sem_stats);
    configs.push_back(FeatureConfig{});  // everything
  }
  const std::vector<EncoderKind> encoders = {
      EncoderKind::kFeatureVector, EncoderKind::kTreeCnn,
      EncoderKind::kTreeLstm, EncoderKind::kTreeAttention};

  // One workload, re-featurized per config.
  const auto queries = bdb.gen->Batch(200);
  bench::PrintHeader("EXP-I encoding × tree-model ablation (cost Kendall tau)");
  std::vector<std::string> cols = {"feature_config"};
  for (EncoderKind k : encoders) cols.push_back(planrepr::EncoderKindName(k));
  bench::Table table(cols);

  std::vector<std::vector<double>> taus(configs.size());
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    planrepr::PlanFeaturizer featurizer(&db, configs[ci]);
    size_t qi = 0;
    costest::CollectOptions copts;
    copts.num_queries = static_cast<int>(queries.size());
    auto collected = costest::CollectSamples(
        db, featurizer, [&] { return queries[qi++]; }, copts);
    ML4DB_CHECK(collected.ok());
    const auto& samples = collected->samples;
    const size_t train_n = 150;

    std::vector<std::string> row = {configs[ci].Name()};
    for (EncoderKind kind : encoders) {
      planrepr::PlanRegressorOptions opts;
      opts.encoder = kind;
      opts.embedding_dim = 24;
      opts.seed = 113;
      planrepr::PlanRegressor model(featurizer.dim(), opts);
      std::vector<ml::FeatureTree> trees;
      std::vector<ml::Vec> targets;
      for (size_t i = 0; i < train_n; ++i) {
        trees.push_back(samples[i].tree);
        targets.push_back({std::log1p(samples[i].latency)});
      }
      Rng rng(114);
      for (int e = 0; e < 25; ++e) model.TrainEpoch(trees, targets, 16, rng);
      std::vector<double> pred, truth;
      for (size_t i = train_n; i < samples.size(); ++i) {
        pred.push_back(model.Predict(samples[i].tree)[0]);
        truth.push_back(samples[i].latency);
      }
      const double tau = KendallTau(pred, truth);
      taus[ci].push_back(tau);
      row.push_back(bench::Fmt(tau, 3));
    }
    table.AddRow(row);
  }
  table.Print();

  // Spread analysis: variation across configs (per encoder) vs variation
  // across encoders (per config).
  double config_spread = 0, encoder_spread = 0;
  for (size_t e = 0; e < encoders.size(); ++e) {
    std::vector<double> col;
    for (size_t c = 0; c < configs.size(); ++c) col.push_back(taus[c][e]);
    config_spread += *std::max_element(col.begin(), col.end()) -
                     *std::min_element(col.begin(), col.end());
  }
  config_spread /= static_cast<double>(encoders.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    encoder_spread += *std::max_element(taus[c].begin(), taus[c].end()) -
                      *std::min_element(taus[c].begin(), taus[c].end());
  }
  encoder_spread /= static_cast<double>(configs.size());
  std::printf(
      "\nmean tau spread across FEATURE CONFIGS (per encoder): %.3f\n"
      "mean tau spread across TREE MODELS (per config):       %.3f\n"
      "Shape check (paper [57]): feature-encoding spread > tree-model "
      "spread -> %s\n",
      config_spread, encoder_spread,
      config_spread > encoder_spread ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
