// EXP-D — ML-enhanced R-tree insertion (paper §3.2): RLR-tree (RL-learned
// ChooseSubtree/Split) and RW-tree (workload-aware cost model) against the
// classical Guttman R-tree, all built by tuple-at-a-time insertion, judged
// by range-query node accesses on a held-out workload.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "spatial/rlr_tree.h"
#include "spatial/rtree.h"
#include "spatial/rw_tree.h"
#include "workload/spatial_gen.h"

namespace {

using namespace ml4db;
using namespace ml4db::spatial;

Rect ToRect(const workload::Rect2& r) { return {r.xlo, r.ylo, r.xhi, r.yhi}; }

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("rtree_insertion", &argc, argv);
  using namespace ml4db;
  constexpr size_t kObjects = 200'000;
  for (auto dist : {workload::SpatialDistribution::kClustered,
                    workload::SpatialDistribution::kSkewed}) {
    workload::SpatialGenOptions opts;
    opts.distribution = dist;
    opts.seed = 31;
    const auto rects = workload::GenerateRects(kObjects, opts, 0.0005, 0.004);
    std::vector<SpatialEntry> entries(rects.size());
    for (size_t i = 0; i < rects.size(); ++i) entries[i] = {ToRect(rects[i]), i};

    // Historical + held-out workloads share the (skewed) query distribution.
    workload::SpatialGenOptions qopts;
    qopts.distribution = workload::SpatialDistribution::kSkewed;
    qopts.seed = 32;
    const auto train_wq = workload::GenerateRangeQueries(100, 0.003, qopts);
    qopts.seed = 33;
    const auto test_wq = workload::GenerateRangeQueries(300, 0.003, qopts);
    std::vector<Rect> train_queries;
    for (const auto& q : train_wq) train_queries.push_back(ToRect(q));

    bench::PrintHeader(std::string("EXP-D insertion policies, ") +
                       workload::SpatialDistributionName(dist) + " data (" +
                       std::to_string(kObjects) + " rects)");
    bench::Table table(
        {"tree", "build_s", "nodes", "avg_accesses", "p99_accesses"});

    auto evaluate = [&](const std::string& name, const RTree& tree,
                        double build_s) {
      std::vector<double> accesses;
      for (const auto& wq : test_wq) {
        accesses.push_back(static_cast<double>(
            tree.RangeQuery(ToRect(wq)).nodes_accessed));
      }
      table.AddRow({name, bench::Fmt(build_s, 2),
                    std::to_string(tree.num_nodes()),
                    bench::Fmt(Mean(accesses), 1),
                    bench::Fmt(Quantile(accesses, 0.99), 1)});
    };

    {
      Stopwatch sw;
      RTree classic;
      for (const auto& e : entries) classic.Insert(e);
      evaluate("classic(guttman)", classic, sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      RlrTree rlr(RTree::Options{}, RlrPolicy::Options{}, 34);
      // Train on a scratch tree over a prefix, then build the serving tree
      // from all entries with the frozen policy.
      const size_t train_n = entries.size() / 4;
      rlr.TrainAndFreeze({entries.begin(), entries.begin() + train_n});
      for (const auto& e : entries) rlr.Insert(e);
      evaluate("rlr(q-learning)", rlr.tree(), sw.ElapsedSeconds());
    }
    {
      Stopwatch sw;
      RwTree rw(RTree::Options{}, train_queries);
      for (const auto& e : entries) rw.Insert(e);
      evaluate("rw(workload-aware)", rw.tree(), sw.ElapsedSeconds());
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper): learned insertion policies (rlr, rw) should "
      "reduce query node accesses vs the classical heuristics, at higher "
      "build cost.\n");
  return 0;
}
