// EXP-B — robustness under updates (paper §3.2): the replacement-paradigm
// learned index cannot absorb inserts (it must rebuild), while ML-enhanced
// learned indexes (ALEX, dynamized PGM) keep the learned win under mixed
// read/insert workloads. Sweep the insert ratio and report throughput;
// RMI pays a full rebuild whenever its staleness exceeds a threshold.

#include <algorithm>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "learned_index/alex_index.h"
#include "learned_index/btree_index.h"
#include "learned_index/pgm_index.h"
#include "learned_index/rmi_index.h"
#include "workload/data_gen.h"

namespace {

using namespace ml4db;
using learned_index::Entry;

constexpr size_t kInitialKeys = 500'000;
constexpr size_t kOperations = 400'000;

std::vector<Entry> Initial(uint64_t seed) {
  workload::DataGenOptions opts;
  opts.max_value = 4'000'000'000ULL;
  opts.seed = seed;
  const auto keys = workload::GenerateSortedUniqueKeys(kInitialKeys, opts);
  std::vector<Entry> entries(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    entries[i] = {keys[i], static_cast<uint64_t>(i)};
  }
  return entries;
}

// Runs a mixed workload; returns ops/second. For the static RMI, inserts
// go to a side buffer and the index is rebuilt once the buffer exceeds 1%
// of the data (the "rebuild to update" strategy) — its cost is charged to
// the workload.
double RunMixed(learned_index::OrderedIndex* index, double insert_ratio,
                const std::vector<Entry>& initial, uint64_t seed) {
  Rng rng(seed);
  Stopwatch sw;
  uint64_t sink = 0;
  for (size_t op = 0; op < kOperations; ++op) {
    if (rng.NextDouble() < insert_ratio) {
      const int64_t key =
          static_cast<int64_t>(rng.NextUint64(4'000'000'000ULL));
      ML4DB_CHECK(index->Insert(key, op).ok());
    } else {
      const int64_t key = initial[rng.NextUint64(initial.size())].key;
      uint64_t v;
      if (index->Lookup(key, &v)) sink += v;
    }
  }
  (void)sink;
  return static_cast<double>(kOperations) / sw.ElapsedSeconds();
}

// RMI with rebuild-on-staleness wrapper.
double RunRmiWithRebuilds(const std::vector<Entry>& initial, double insert_ratio,
                          uint64_t seed, size_t* rebuilds) {
  Rng rng(seed);
  learned_index::RmiIndex rmi(2048);
  ML4DB_CHECK(rmi.BulkLoad(initial).ok());
  std::vector<Entry> all = initial;
  std::vector<Entry> buffer;
  *rebuilds = 0;
  Stopwatch sw;
  uint64_t sink = 0;
  for (size_t op = 0; op < kOperations; ++op) {
    if (rng.NextDouble() < insert_ratio) {
      const int64_t key =
          static_cast<int64_t>(rng.NextUint64(4'000'000'000ULL));
      buffer.push_back({key, op});
      if (buffer.size() > all.size() / 100) {
        // Rebuild: merge buffer and bulk-load again.
        std::sort(buffer.begin(), buffer.end(),
                  [](const Entry& a, const Entry& b) { return a.key < b.key; });
        std::vector<Entry> merged;
        merged.reserve(all.size() + buffer.size());
        std::merge(all.begin(), all.end(), buffer.begin(), buffer.end(),
                   std::back_inserter(merged),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
        merged.erase(std::unique(merged.begin(), merged.end(),
                                 [](const Entry& a, const Entry& b) {
                                   return a.key == b.key;
                                 }),
                     merged.end());
        all = std::move(merged);
        ML4DB_CHECK(rmi.BulkLoad(all).ok());
        buffer.clear();
        ++*rebuilds;
      }
    } else {
      const int64_t key = initial[rng.NextUint64(initial.size())].key;
      uint64_t v;
      if (rmi.Lookup(key, &v)) sink += v;
    }
  }
  (void)sink;
  return static_cast<double>(kOperations) / sw.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("index_updates", &argc, argv);
  using namespace ml4db;
  const auto initial = Initial(42);
  bench::PrintHeader(
      "EXP-B mixed read/insert throughput (500k initial keys, 400k ops)");
  bench::Table table({"insert_ratio", "btree_Mops", "alex_Mops",
                      "pgm_dyn_Mops", "rmi+rebuild_Mops", "rmi_rebuilds"});
  for (double ratio : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    learned_index::BTreeIndex btree;
    ML4DB_CHECK(btree.BulkLoad(initial).ok());
    learned_index::AlexIndex alex;
    ML4DB_CHECK(alex.BulkLoad(initial).ok());
    learned_index::DynamicPgmIndex pgm(32, 4096);
    ML4DB_CHECK(pgm.BulkLoad(initial).ok());

    const double bt = RunMixed(&btree, ratio, initial, 7) / 1e6;
    const double al = RunMixed(&alex, ratio, initial, 7) / 1e6;
    const double pg = RunMixed(&pgm, ratio, initial, 7) / 1e6;
    size_t rebuilds = 0;
    const double rm = RunRmiWithRebuilds(initial, ratio, 7, &rebuilds) / 1e6;
    table.AddRow({bench::Fmt(ratio, 1), bench::Fmt(bt, 2), bench::Fmt(al, 2),
                  bench::Fmt(pg, 2), bench::Fmt(rm, 2),
                  std::to_string(rebuilds)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): at insert_ratio 0 the static learned index "
      "(rmi) is competitive; as the ratio grows its rebuild cost collapses "
      "throughput while ML-enhanced indexes (alex, pgm_dyn) degrade "
      "gracefully alongside the btree.\n");
  return 0;
}
