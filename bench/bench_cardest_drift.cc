// EXP-K — cardinality estimation under data drift (paper §3.3, open
// problem 2): stream of single-table queries; mid-stream the data shifts.
// Policies compared: stale (never update), warper (drift detection +
// evidence decay + streaming refit), retrain (periodic full refit — the
// expensive upper bound), and the classical histogram after re-ANALYZE.
// Reported as windowed median q-error across the stream.

#include "bench/bench_util.h"
#include "costest/estimators.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("cardest_drift", &argc, argv);
  using namespace ml4db;
  bench::BenchDb bdb = bench::MakeBenchDb(131, 30000, 1500, 3);
  engine::Database& db = *bdb.db;

  workload::QueryGenOptions qopts;
  qopts.min_tables = 1;
  qopts.max_tables = 1;
  qopts.seed = 132;
  workload::QueryGenerator gen(bdb.schema_ptr.get(), qopts);
  auto next_fact = [&] {
    while (true) {
      engine::Query q = gen.Next();
      if (q.tables[0] == "fact") return q;
    }
  };

  auto vec = std::make_shared<costest::SingleTableVectorizer>(&db, "fact");
  costest::LwGpEstimator stale(vec, costest::LwGpEstimator::Options{});
  costest::LwGpEstimator adaptive(vec, costest::LwGpEstimator::Options{});
  costest::WarperAdapter warper(&adaptive, costest::WarperAdapter::Options{});
  // "retrain": keeps a buffer of the last window and refits from scratch
  // each window (expensive but optimal recency).
  std::vector<std::pair<engine::Query, double>> recent;

  // Warm-up phase.
  for (int i = 0; i < 250; ++i) {
    engine::Query q = next_fact();
    auto r = db.Run(q);
    ML4DB_CHECK(r.ok());
    const double card = static_cast<double>(r->count);
    stale.Observe(q, card);
    warper.ObserveFeedback(q, card);
    recent.emplace_back(q, card);
  }

  bench::PrintHeader("EXP-K q-error stream with mid-stream data drift");
  bench::Table table({"phase", "window", "stale_p50", "warper_p50",
                      "retrain_p50", "drifts"});

  int window_id = 0;
  auto run_window = [&](const std::string& phase) {
    ++window_id;
    std::vector<double> es, ew, er, truth;
    // Periodic retrain policy: fresh model on the last 150 observations.
    costest::LwGpEstimator retrained(vec, costest::LwGpEstimator::Options{});
    const size_t start = recent.size() > 150 ? recent.size() - 150 : 0;
    for (size_t i = start; i < recent.size(); ++i) {
      retrained.Observe(recent[i].first, recent[i].second);
    }
    for (int i = 0; i < 80; ++i) {
      engine::Query q = next_fact();
      auto r = db.Run(q);
      ML4DB_CHECK(r.ok());
      const double card = static_cast<double>(r->count);
      es.push_back(stale.EstimateCardinality(q));
      ew.push_back(warper.EstimateCardinality(q));
      er.push_back(retrained.EstimateCardinality(q));
      truth.push_back(card);
      warper.ObserveFeedback(q, card);
      recent.emplace_back(q, card);
    }
    table.AddRow({phase, std::to_string(window_id),
                  bench::Fmt(ml::SummarizeQErrors(es, truth).median, 2),
                  bench::Fmt(ml::SummarizeQErrors(ew, truth).median, 2),
                  bench::Fmt(ml::SummarizeQErrors(er, truth).median, 2),
                  std::to_string(warper.drifts_handled())});
  };

  run_window("pre-drift");
  run_window("pre-drift");
  ML4DB_CHECK(
      workload::InjectDataDrift(&db, bdb.schema(), 60000, 0.12, 133, true).ok());
  run_window("post-drift");
  run_window("post-drift");
  run_window("post-drift");
  table.Print();
  std::printf(
      "\nShape check (paper): post-drift the stale model's q-error blows "
      "up and stays high; warper detects the shift and re-converges toward "
      "the periodic-retrain bound at a fraction of its cost.\n");
  return 0;
}
