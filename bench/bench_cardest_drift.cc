// EXP-K — cardinality estimation under data drift (paper §3.3, open
// problem 2): stream of single-table queries; mid-stream the data shifts.
// Policies compared: stale (never update), warper (drift detection +
// evidence decay + streaming refit), retrain (periodic full refit — the
// expensive upper bound), and the classical histogram after re-ANALYZE.
// Reported as windowed median q-error across the stream.
//
// The retrain policy refits in the BACKGROUND via drift::RetrainScheduler:
// each window schedules a fresh fit on the shared pool and the stream
// keeps serving with the previous model until the replacement lands
// (retrain_at = how many queries into the window that happened; with
// ML4DB_THREADS=1 the fit runs inline and lands at query 0, reproducing
// the old blocking refit exactly).

#include "bench/bench_util.h"
#include "costest/estimators.h"
#include "drift/retrain_scheduler.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("cardest_drift", &argc, argv);
  using namespace ml4db;
  bench::BenchDb bdb = bench::MakeBenchDb(131, 30000, 1500, 3);
  engine::Database& db = *bdb.db;

  workload::QueryGenOptions qopts;
  qopts.min_tables = 1;
  qopts.max_tables = 1;
  qopts.seed = 132;
  workload::QueryGenerator gen(bdb.schema_ptr.get(), qopts);
  auto next_fact = [&] {
    while (true) {
      engine::Query q = gen.Next();
      if (q.tables[0] == "fact") return q;
    }
  };

  auto vec = std::make_shared<costest::SingleTableVectorizer>(&db, "fact");
  costest::LwGpEstimator stale(vec, costest::LwGpEstimator::Options{});
  costest::LwGpEstimator adaptive(vec, costest::LwGpEstimator::Options{});
  costest::WarperAdapter warper(&adaptive, costest::WarperAdapter::Options{});
  // "retrain": keeps a buffer of the last window and refits from scratch
  // each window (expensive but optimal recency); the refit itself runs as
  // a background pool job, serving the previous model in the meantime.
  std::vector<std::pair<engine::Query, double>> recent;
  drift::RetrainScheduler::Options sopts;
  sopts.module = "drift.cardest";
  drift::RetrainScheduler sched(sopts);
  std::shared_ptr<costest::LwGpEstimator> retrained;
  auto schedule_refit = [&](const std::string& label) {
    const size_t start = recent.size() > 150 ? recent.size() - 150 : 0;
    std::vector<std::pair<engine::Query, double>> snap(
        recent.begin() + static_cast<ptrdiff_t>(start), recent.end());
    sched.Schedule(label, [vec, snap = std::move(snap)]() {
      auto m = std::make_shared<costest::LwGpEstimator>(
          vec, costest::LwGpEstimator::Options{});
      for (const auto& qc : snap) m->Observe(qc.first, qc.second);
      return std::static_pointer_cast<void>(m);
    });
  };

  // Warm-up phase.
  for (int i = 0; i < 250; ++i) {
    engine::Query q = next_fact();
    auto r = db.Run(q);
    ML4DB_CHECK(r.ok());
    const double card = static_cast<double>(r->count);
    stale.Observe(q, card);
    warper.ObserveFeedback(q, card);
    recent.emplace_back(q, card);
  }

  // The retrain policy needs a model before the first window; this first
  // fit is awaited (deployments ship an initial model).
  schedule_refit("warmup");
  for (auto& ready : sched.Drain()) {
    retrained = std::static_pointer_cast<costest::LwGpEstimator>(ready.model);
  }

  bench::PrintHeader("EXP-K q-error stream with mid-stream data drift");
  bench::Table table({"phase", "window", "stale_p50", "warper_p50",
                      "retrain_p50", "retrain_at", "drifts"});

  int window_id = 0;
  auto run_window = [&](const std::string& phase) {
    ++window_id;
    std::vector<double> es, ew, er, truth;
    // Periodic retrain policy: fresh model on the last 150 observations,
    // fit in the background while this window's queries keep serving.
    schedule_refit("window-" + std::to_string(window_id));
    int retrain_at = -1;
    for (int i = 0; i < 80; ++i) {
      for (auto& ready : sched.TakeReady()) {
        retrained =
            std::static_pointer_cast<costest::LwGpEstimator>(ready.model);
        if (retrain_at < 0) retrain_at = i;
      }
      engine::Query q = next_fact();
      auto r = db.Run(q);
      ML4DB_CHECK(r.ok());
      const double card = static_cast<double>(r->count);
      es.push_back(stale.EstimateCardinality(q));
      ew.push_back(warper.EstimateCardinality(q));
      er.push_back(retrained->EstimateCardinality(q));
      truth.push_back(card);
      warper.ObserveFeedback(q, card);
      recent.emplace_back(q, card);
    }
    table.AddRow({phase, std::to_string(window_id),
                  bench::Fmt(ml::SummarizeQErrors(es, truth).median, 2),
                  bench::Fmt(ml::SummarizeQErrors(ew, truth).median, 2),
                  bench::Fmt(ml::SummarizeQErrors(er, truth).median, 2),
                  retrain_at < 0 ? "late" : std::to_string(retrain_at),
                  std::to_string(warper.drifts_handled())});
  };

  run_window("pre-drift");
  run_window("pre-drift");
  ML4DB_CHECK(
      workload::InjectDataDrift(&db, bdb.schema(), 60000, 0.12, 133, true).ok());
  run_window("post-drift");
  run_window("post-drift");
  run_window("post-drift");
  table.Print();
  std::printf(
      "\nShape check (paper): post-drift the stale model's q-error blows "
      "up and stays high; warper detects the shift and re-converges toward "
      "the periodic-retrain bound at a fraction of its cost.\n");
  return 0;
}
