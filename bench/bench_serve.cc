// EXP-S — query serving under concurrent load (tutorial §4 open problem:
// model/inference efficiency is only meaningful measured end-to-end under
// traffic). Drives a running ml4db_server over TCP with a closed-loop
// (--qps 0: each connection fires its next query on response) or
// open-loop (--qps > 0: paced sends with pipelining, the "users don't
// wait" model) workload, and reports achieved QPS, client-observed
// p50/p95/p99 latency, and the shed/timeout/lost tallies that make the
// admission-control story measurable.
//
// The query stream is generated client-side: bench_serve rebuilds the
// server's star schema *shape* (table names + columns are deterministic
// in --dims/--seed, independent of row counts) over a tiny local replica
// and serializes each generated query with Query::ToString — the text the
// server parses back. Shapes come from a fixed --templates pool (default
// 12) shared across workers with per-query literals, the bounded-shape
// locality a real serving workload has (and the plan cache / workload
// profile assume); --templates 0 restores a fresh random shape per query.
//
// Exit code is non-zero when responses were lost or nothing succeeded, so
// CI smoke fails loudly.
//
// With --admin-port the bench also runs a scraper thread that hits the
// server's admin plane (/metrics, /events, /slow, /readyz) for the whole
// run — the scrape-while-loaded mode CI uses to prove introspection never
// destabilizes the serving path.
//
// With --write-ratio R each worker turns fraction R of its traffic into
// live writes against the fact table (7/8 INSERTs of fresh rows, 1/8
// narrow-range DELETEs), exercising the server's delta-store write path
// under concurrent reads. Write outcomes and latency are tallied
// separately, and the scraper folds the server's ml4db_delta_rows /
// ml4db_index_stale_rows gauges into the bench JSON so a run records how
// far the serving indexes lagged the ingest.
//
// With --shards N (matching the server's --shards) the bench stamps the
// shard layout into its JSON and the scraper folds the server's
// ml4db_shard_retrains_total counter in. --write-shard K pins every
// INSERTed row's partition key to hash shard K (and skips DELETEs), and
// --write-count M bounds the total writes across workers — together they
// aim a bounded ingest burst at exactly one shard, the setup the sharded
// smoke uses to prove single-shard retrains.
//
//   bench_serve --port 7433 --connections 4 --duration-ms 2000
//               [--qps 200] [--deadline-ms 1000] [--json]
//               [--admin-port 7434] [--scrape-interval-ms 250]
//               [--write-ratio 0.2] [--write-shard K] [--write-count M]
//               [--shards N]               (stamped into the JSON config)
//               [--index-backend sorted]   (stamped into the JSON config)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/math_util.h"
#include "engine/sharding/partition.h"
#include "obs/json.h"
#include "server/admin.h"
#include "server/client.h"
#include "workload/query_gen.h"
#include "workload/schema_gen.h"

namespace {

using namespace ml4db;
using Clock = std::chrono::steady_clock;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7433;
  int connections = 4;
  int duration_ms = 2000;
  double qps = 0.0;  // total across connections; 0 = closed loop
  uint32_t deadline_ms = 1000;
  int dims = 4;
  uint64_t seed = 42;
  int admin_port = 0;  // > 0 enables the scrape-while-loaded thread
  int scrape_interval_ms = 250;
  /// Fraction of traffic sent as writes (0 = read-only).
  double write_ratio = 0.0;
  /// Shard count the *server* was started with (config stamp + the shard
  /// INSERTed partition keys are pinned against).
  int shards = 1;
  /// Pin every INSERT's partition key to this hash shard and skip
  /// DELETEs (-1 = off). Requires --shards to match the server.
  int write_shard = -1;
  /// Total writes across all workers (-1 = unbounded); a bounded burst
  /// crosses a staleness threshold exactly once.
  int64_t write_count = -1;
  /// Which index backend the *server* was started with; stamped into the
  /// bench JSON so per-backend serve runs are distinguishable downstream.
  std::string index_backend = "sorted";
  /// Size of the fixed query-template pool every worker draws from: a
  /// real serving workload repeats a bounded set of shapes (the premise
  /// of both the workload profile and the plan cache), so shapes recur
  /// while literals stay fresh per query. 0 = a brand-new random
  /// template per query (the pre-plan-cache stream: near-unique shapes).
  int templates = 12;
};

/// Per-worker query source: fresh literals from this worker's generator,
/// shapes drawn uniformly from the shared template pool (or fully random
/// when the pool is empty).
struct QueryStream {
  workload::QueryGenerator gen;
  std::vector<workload::QueryTemplate> pool;
  Rng pick;

  engine::Query Next() {
    if (pool.empty()) return gen.Next();
    return gen.Instantiate(pool[pick.NextUint64(pool.size())]);
  }
};

struct ScrapeTally {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> bytes{0};  ///< total /metrics payload bytes
  /// Last server-side delta visibility seen by the scraper (-1 = never).
  std::atomic<double> delta_rows{-1.0};
  std::atomic<double> stale_rows{-1.0};
  /// Last ml4db_shard_retrains_total seen (-1 = never).
  std::atomic<double> shard_retrains{-1.0};
  /// Highest /indexes probe_err_p95 seen DURING load (-1 = never scraped):
  /// the peak matters because a post-run scrape may land after a retrain
  /// already swapped the degraded structure out.
  std::atomic<double> probe_err_p95_peak{-1.0};
  /// Highest fleet-wide sample count seen in one scrape. Per-structure
  /// counters reset on every swap, so only the in-flight peak reliably
  /// proves probes were being measured.
  std::atomic<double> probe_err_samples_peak{-1.0};
};

/// Value of gauge `name` in a Prometheus text body, or -1 when absent.
double PromValue(const std::string& body, const std::string& name) {
  size_t pos = 0;
  while ((pos = body.find(name, pos)) != std::string::npos) {
    const size_t vstart = pos + name.size();
    if ((pos == 0 || body[pos - 1] == '\n') && vstart < body.size() &&
        body[vstart] == ' ') {
      return std::atof(body.c_str() + vstart + 1);
    }
    pos = vstart;
  }
  return -1.0;
}

/// Hammers the admin plane while the load workers run: proves a scraper
/// can't destabilize serving and gives sanitizer builds a concurrent
/// exercise of the exposition path.
void ScrapeWorker(const Flags& flags, const std::atomic<bool>* stop,
                  ScrapeTally* tally) {
  // /indexes sits second so even a short run records an in-flight
  // probe-sample peak before the first retrain wave resets the
  // per-structure counters — the post-run scrape alone races those
  // resets once load (and thus probing) has stopped.
  static const char* kTargets[] = {"/metrics", "/indexes?format=json",
                                   "/events?n=32", "/slow",
                                   "/readyz", "/workload?n=8"};
  constexpr size_t kNumTargets = sizeof(kTargets) / sizeof(kTargets[0]);
  static obs::Histogram* scrape_us =
      obs::GetHistogram("ml4db.serve.scrape_latency_us");
  size_t i = 0;
  while (!stop->load(std::memory_order_acquire)) {
    const char* target = kTargets[i++ % kNumTargets];
    const Clock::time_point t0 = Clock::now();
    const auto result = server::HttpGet(flags.host, flags.admin_port, target);
    if (result.ok() && result->status_code < 500) {
      tally->ok.fetch_add(1);
      if (std::strcmp(target, "/metrics") == 0) {
        tally->bytes.fetch_add(result->body.size());
        // Track how far the serving indexes lag the live ingest; the last
        // scrape before shutdown is what the bench reports.
        const double delta = PromValue(result->body, "ml4db_delta_rows");
        if (delta >= 0) tally->delta_rows.store(delta);
        const double stale =
            PromValue(result->body, "ml4db_index_stale_rows");
        if (stale >= 0) tally->stale_rows.store(stale);
        const double retrains =
            PromValue(result->body, "ml4db_shard_retrains_total");
        if (retrains >= 0) tally->shard_retrains.store(retrains);
      } else if (std::strncmp(target, "/indexes", 8) == 0) {
        const auto doc = obs::JsonValue::Parse(result->body);
        if (doc.ok()) {
          const double p95 = doc->GetNumber("probe_err_p95");
          if (p95 > tally->probe_err_p95_peak.load()) {
            tally->probe_err_p95_peak.store(p95);
          }
          const double samples = doc->GetNumber("probe_err_samples");
          if (samples > tally->probe_err_samples_peak.load()) {
            tally->probe_err_samples_peak.store(samples);
          }
        }
      }
    } else if (result.ok() && result->status_code == 503) {
      tally->ok.fetch_add(1);  // draining /readyz is a valid answer
    } else {
      tally->failed.fetch_add(1);
    }
    scrape_us->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count()));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.scrape_interval_ms));
  }
}

struct Tally {
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> error{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> timeout{0};
  std::atomic<uint64_t> shutdown{0};
  std::atomic<uint64_t> lost{0};       ///< sent but never answered
  std::atomic<uint64_t> transport{0};  ///< connection-level failures

  uint64_t received() const {
    return ok.load() + error.load() + shed.load() + timeout.load() +
           shutdown.load();
  }
};

obs::Histogram* LatencyHist() {
  static obs::Histogram* h =
      obs::GetHistogram("ml4db.serve.client_latency_us");
  return h;
}

obs::Histogram* WriteLatencyHist() {
  static obs::Histogram* h =
      obs::GetHistogram("ml4db.serve.write_latency_us");
  return h;
}

/// Generates the write side of a mixed workload: mostly INSERTs of fresh
/// fact rows, with 1-in-8 statements a narrow-range DELETE on the first
/// attribute column. Values land in the schema's attribute domain so
/// DELETEs occasionally match and inserted rows look like generated ones.
struct WriteGen {
  std::string table;
  size_t num_cols = 0;
  int attr_col = 0;
  int64_t attr_domain = 1;
  Rng rng{1};
  int64_t next_id = 1'000'000'000;  ///< clear of generated ids
  /// The server's hash layout over the id column; used to pin inserts.
  engine::sharding::PartitionSpec spec;
  int pin_shard = -1;  ///< --write-shard: target every INSERT here
  /// Shared across workers; claims one unit per write (--write-count).
  std::atomic<int64_t>* budget = nullptr;

  bool NextIsWrite(double write_ratio) {
    if (write_ratio <= 0.0 || rng.NextDouble() >= write_ratio) return false;
    // Claim from the bounded burst, if one is configured. fetch_sub past
    // zero is harmless — every claim at <= 0 is rejected.
    return budget == nullptr ||
           budget->fetch_sub(1, std::memory_order_relaxed) > 0;
  }

  std::string Next() {
    // Pinned mode is INSERT-only: a DELETE's range predicate would touch
    // whatever shards its attribute values hash-route to, defeating the
    // point of aiming the burst at one shard.
    if (pin_shard < 0 && rng.NextUint64(8) == 0) {
      const int64_t lo =
          static_cast<int64_t>(rng.NextUint64(static_cast<uint64_t>(attr_domain)));
      const int64_t hi = lo + std::max<int64_t>(attr_domain / 100000, 1);
      return "DELETE FROM " + table + " t0 WHERE t0.c" +
             std::to_string(attr_col) + " BETWEEN " + std::to_string(lo) +
             " AND " + std::to_string(hi);
    }
    if (pin_shard >= 0) {
      // Walk forward to the next id hashing into the target shard (~1 in
      // `shards` ids qualifies, so this stays cheap).
      while (spec.ShardOf(next_id) != pin_shard) ++next_id;
    }
    std::string out = "INSERT INTO " + table + " VALUES (";
    out += std::to_string(next_id++);
    for (size_t c = 1; c < num_cols; ++c) {
      out += ", " + std::to_string(
                        rng.NextUint64(static_cast<uint64_t>(attr_domain)));
    }
    out += ")";
    return out;
  }
};

void Classify(const server::Response& resp, Tally* tally) {
  switch (resp.status) {
    case server::ResponseStatus::kOk: tally->ok.fetch_add(1); break;
    case server::ResponseStatus::kError: tally->error.fetch_add(1); break;
    case server::ResponseStatus::kOverloaded: tally->shed.fetch_add(1); break;
    case server::ResponseStatus::kTimeout: tally->timeout.fetch_add(1); break;
    case server::ResponseStatus::kShuttingDown:
      tally->shutdown.fetch_add(1);
      break;
  }
}

void RecordLatency(Clock::time_point sent_at, Clock::time_point now,
                   bool is_write = false) {
  (is_write ? WriteLatencyHist() : LatencyHist())
      ->Record(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - sent_at)
              .count()));
}

/// Closed loop: next query only after the previous response — models a
/// user who waits. Per-connection concurrency of exactly 1.
void ClosedLoopWorker(const Flags& flags, uint64_t session_id,
                      QueryStream gen, WriteGen wgen,
                      Tally* tally, Tally* wtally) {
  server::Client client(session_id);
  if (!client.Connect(flags.host, flags.port).ok()) {
    tally->transport.fetch_add(1);
    return;
  }
  const Clock::time_point end =
      Clock::now() + std::chrono::milliseconds(flags.duration_ms);
  while (Clock::now() < end) {
    const bool is_write = wgen.NextIsWrite(flags.write_ratio);
    Tally* t = is_write ? wtally : tally;
    const std::string text = is_write ? wgen.Next() : gen.Next().ToString();
    const Clock::time_point sent_at = Clock::now();
    t->sent.fetch_add(1);
    const int timeout_ms = static_cast<int>(flags.deadline_ms) + 2000;
    const auto resp =
        is_write ? client.CallWrite(text, flags.deadline_ms, timeout_ms)
                 : client.Call(text, flags.deadline_ms, timeout_ms);
    if (!resp.ok()) {
      t->lost.fetch_add(1);
      t->transport.fetch_add(1);
      return;  // connection is unusable past a transport error
    }
    RecordLatency(sent_at, Clock::now(), is_write);
    Classify(*resp, t);
  }
}

/// Open loop: sends are paced by the target rate regardless of responses
/// (pipelined), so server-side queueing shows up as client latency and —
/// past the admission bound — as OVERLOADED sheds.
void OpenLoopWorker(const Flags& flags, uint64_t session_id, double rate_qps,
                    QueryStream gen, WriteGen wgen, Tally* tally,
                    Tally* wtally) {
  server::Client client(session_id);
  if (!client.Connect(flags.host, flags.port).ok()) {
    tally->transport.fetch_add(1);
    return;
  }
  const auto interval = std::chrono::microseconds(
      static_cast<int64_t>(1e6 / std::max(rate_qps, 1e-3)));
  const Clock::time_point start = Clock::now();
  const Clock::time_point end =
      start + std::chrono::milliseconds(flags.duration_ms);
  // Tail: how long after the last send we wait for straggler responses.
  const Clock::time_point tail_deadline =
      end + std::chrono::milliseconds(flags.deadline_ms + 2000);

  struct Pending {
    Clock::time_point sent_at;
    bool is_write;
  };
  std::map<uint64_t, Pending> pending;  // request id -> send record
  Clock::time_point next_send = start;
  bool transport_down = false;

  auto drain_one = [&](int wait_ms) -> bool {
    const auto resp = client.Receive(wait_ms);
    if (!resp.ok()) {
      if (resp.status().code() == StatusCode::kResourceExhausted) {
        return false;  // timed out waiting — not fatal
      }
      transport_down = true;
      return false;
    }
    bool is_write = false;
    const auto it = pending.find(resp->request_id);
    if (it != pending.end()) {
      is_write = it->second.is_write;
      RecordLatency(it->second.sent_at, Clock::now(), is_write);
      pending.erase(it);
    }
    Classify(*resp, is_write ? wtally : tally);
    return true;
  };

  while (!transport_down) {
    const Clock::time_point now = Clock::now();
    if (now >= end) break;
    if (now >= next_send) {
      const bool is_write = wgen.NextIsWrite(flags.write_ratio);
      server::Request req;
      req.kind = is_write ? server::RequestKind::kWrite
                          : server::RequestKind::kQuery;
      req.session_id = session_id;
      req.request_id = client.NextRequestId();
      req.deadline_ms = flags.deadline_ms;
      req.query_text = is_write ? wgen.Next() : gen.Next().ToString();
      if (!client.Send(req).ok()) {
        transport_down = true;
        break;
      }
      pending.emplace(req.request_id, Pending{Clock::now(), is_write});
      (is_write ? wtally : tally)->sent.fetch_add(1);
      next_send += interval;
      continue;
    }
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(next_send - now)
            .count());
    drain_one(std::max(wait_ms, 1));  // >= 1ms so a near-due send can't spin
  }
  while (!transport_down && !pending.empty() && Clock::now() < tail_deadline) {
    drain_one(50);
  }
  if (!pending.empty()) {
    size_t read_lost = 0, write_lost = 0;
    for (const auto& [id, p] : pending) {
      (p.is_write ? write_lost : read_lost) += 1;
    }
    if (read_lost > 0) tally->lost.fetch_add(read_lost);
    if (write_lost > 0) wtally->lost.fetch_add(write_lost);
    if (transport_down) tally->transport.fetch_add(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("serve", &argc, argv);

  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") flags.host = value();
    else if (arg == "--port") flags.port = std::atoi(value());
    else if (arg == "--connections") flags.connections = std::atoi(value());
    else if (arg == "--duration-ms") flags.duration_ms = std::atoi(value());
    else if (arg == "--qps") flags.qps = std::atof(value());
    else if (arg == "--deadline-ms") flags.deadline_ms = static_cast<uint32_t>(std::atoi(value()));
    else if (arg == "--dims") flags.dims = std::atoi(value());
    else if (arg == "--seed") flags.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--admin-port") flags.admin_port = std::atoi(value());
    else if (arg == "--scrape-interval-ms") flags.scrape_interval_ms = std::max(std::atoi(value()), 1);
    else if (arg == "--write-ratio") flags.write_ratio = std::atof(value());
    else if (arg == "--shards") flags.shards = std::max(std::atoi(value()), 1);
    else if (arg == "--write-shard") flags.write_shard = std::atoi(value());
    else if (arg == "--write-count") flags.write_count = std::strtoll(value(), nullptr, 10);
    else if (arg == "--index-backend") flags.index_backend = value();
    else if (arg == "--templates") flags.templates = std::max(std::atoi(value()), 0);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  flags.connections = std::max(flags.connections, 1);
  flags.write_ratio = std::clamp(flags.write_ratio, 0.0, 1.0);
  if (flags.write_shard >= flags.shards) {
    std::fprintf(stderr, "--write-shard %d out of range for --shards %d\n",
                 flags.write_shard, flags.shards);
    return 2;
  }
  bench::SetBenchConfig("index_backend", flags.index_backend);
  bench::SetBenchConfig("templates", std::to_string(flags.templates));
  bench::SetBenchConfig("write_ratio", bench::Fmt(flags.write_ratio, 3));
  bench::SetBenchConfig("shards", std::to_string(flags.shards));
  if (flags.write_shard >= 0) {
    bench::SetBenchConfig("write_shard", std::to_string(flags.write_shard));
  }

  // Tiny local replica of the server's schema: table names and filterable
  // columns depend only on --dims/--seed, not on row counts, so queries
  // generated here are valid on the server's (much larger) instance.
  engine::Database replica;
  workload::SchemaGenOptions sopts;
  sopts.num_dimensions = flags.dims;
  sopts.fact_rows = 64;
  sopts.dim_rows = 16;
  sopts.seed = flags.seed;
  const auto schema = workload::BuildSyntheticDb(&replica, sopts);
  ML4DB_CHECK_MSG(schema.ok(), "replica schema build failed");

  workload::QueryGenOptions qopts;
  qopts.min_tables = 2;
  qopts.max_tables = 4;
  qopts.seed = flags.seed ^ 0xbe7cULL;

  // One shared template pool, drawn once: every worker samples shapes
  // from the same bounded set (literals stay per-worker random), so the
  // stream has the shape locality a real serving workload has.
  std::vector<workload::QueryTemplate> template_pool;
  if (flags.templates > 0) {
    workload::QueryGenerator pool_gen(&*schema, qopts);
    Rng op_rng(flags.seed ^ 0x0b5e55edULL);
    template_pool.reserve(flags.templates);
    for (int i = 0; i < flags.templates; ++i) {
      workload::QueryTemplate tmpl = pool_gen.MakeTemplate();
      // Pin each filter's operator at pool-draw time (the prepared-
      // statement model): one template = one plan-cache shape, with only
      // the literals varying per instantiation. The first filtered
      // template is pinned all-equality — a point-lookup statement, the
      // always-index-probing shape every real workload has. That matters
      // under the plan cache: a range shape primed with a wide literal
      // caches a seq-scan plan for every later instance, so without a
      // point-lookup shape the whole stream can stop probing indexes.
      const bool first_filtered =
          !tmpl.filter_on.empty() &&
          std::none_of(template_pool.begin(), template_pool.end(),
                       [](const workload::QueryTemplate& t) {
                         return !t.filter_on.empty();
                       });
      for (size_t f = 0; f < tmpl.filter_on.size(); ++f) {
        const bool eq = first_filtered || op_rng.Bernoulli(0.15);
        tmpl.filter_op.push_back(eq ? engine::CompareOp::kEq
                                    : engine::CompareOp::kBetween);
      }
      template_pool.push_back(std::move(tmpl));
    }
  }

  // Write generation targets the fact table (= the star schema's hub).
  const auto fact = replica.catalog().GetTable(schema->table_names[0]);
  ML4DB_CHECK_MSG(fact.ok(), "replica fact table missing");
  WriteGen wgen_proto;
  wgen_proto.table = schema->table_names[0];
  wgen_proto.num_cols = (*fact)->num_columns();
  wgen_proto.attr_col = schema->attr_columns[0].empty()
                            ? static_cast<int>((*fact)->num_columns()) - 1
                            : schema->attr_columns[0].front();
  wgen_proto.attr_domain = std::max<int64_t>(schema->attr_domain, 1);
  wgen_proto.spec.shards = flags.shards;  // hash over the id column
  wgen_proto.pin_shard = flags.write_shard;
  std::atomic<int64_t> write_budget{flags.write_count};
  if (flags.write_count >= 0) wgen_proto.budget = &write_budget;

  Tally tally;
  Tally wtally;
  const double per_conn_qps = flags.qps / flags.connections;
  std::vector<std::thread> workers;
  workers.reserve(flags.connections);
  const auto t0 = Clock::now();
  for (int c = 0; c < flags.connections; ++c) {
    workload::QueryGenOptions wopts = qopts;
    wopts.seed = qopts.seed + static_cast<uint64_t>(c) * 7919;
    QueryStream gen{workload::QueryGenerator(&*schema, wopts), template_pool,
                    Rng(flags.seed ^ (0x7e3a91ULL + static_cast<uint64_t>(c)))};
    WriteGen wgen = wgen_proto;
    wgen.rng = Rng(flags.seed ^ (0x57ca1eULL + static_cast<uint64_t>(c)));
    // Disjoint per-worker id ranges keep INSERTed fact ids unique.
    wgen.next_id += static_cast<int64_t>(c) * 10'000'000;
    const uint64_t session_id = 1000 + static_cast<uint64_t>(c);
    if (flags.qps > 0) {
      workers.emplace_back(OpenLoopWorker, flags, session_id, per_conn_qps,
                           std::move(gen), std::move(wgen), &tally, &wtally);
    } else {
      workers.emplace_back(ClosedLoopWorker, flags, session_id,
                           std::move(gen), std::move(wgen), &tally, &wtally);
    }
  }
  ScrapeTally scrapes;
  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (flags.admin_port > 0) {
    scraper = std::thread(ScrapeWorker, flags, &stop_scraper, &scrapes);
  }
  for (auto& w : workers) w.join();
  if (scraper.joinable()) {
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
  }
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const uint64_t sent = tally.sent.load();
  const uint64_t received = tally.received();
  const double achieved_qps = wall_s > 0 ? received / wall_s : 0.0;
  obs::GetGauge("ml4db.serve.achieved_qps")->Set(achieved_qps);
  obs::GetGauge("ml4db.serve.connections")
      ->Set(static_cast<double>(flags.connections));
  obs::GetCounter("ml4db.serve.sent_total")->Inc(sent);
  obs::GetCounter("ml4db.serve.ok_total")->Inc(tally.ok.load());
  obs::GetCounter("ml4db.serve.error_total")->Inc(tally.error.load());
  obs::GetCounter("ml4db.serve.shed_total")->Inc(tally.shed.load());
  obs::GetCounter("ml4db.serve.timeout_total")->Inc(tally.timeout.load());
  obs::GetCounter("ml4db.serve.lost_total")->Inc(tally.lost.load());
  if (flags.write_ratio > 0) {
    obs::GetCounter("ml4db.serve.write_sent_total")->Inc(wtally.sent.load());
    obs::GetCounter("ml4db.serve.write_ok_total")->Inc(wtally.ok.load());
    obs::GetCounter("ml4db.serve.write_error_total")
        ->Inc(wtally.error.load());
    obs::GetCounter("ml4db.serve.write_shed_total")->Inc(wtally.shed.load());
    obs::GetCounter("ml4db.serve.write_timeout_total")
        ->Inc(wtally.timeout.load());
    obs::GetCounter("ml4db.serve.write_lost_total")->Inc(wtally.lost.load());
  }
  if (scrapes.delta_rows.load() >= 0) {
    obs::GetGauge("ml4db.serve.delta_rows")->Set(scrapes.delta_rows.load());
  }
  if (scrapes.stale_rows.load() >= 0) {
    obs::GetGauge("ml4db.serve.stale_rows")->Set(scrapes.stale_rows.load());
  }
  obs::GetGauge("ml4db.serve.shards")
      ->Set(static_cast<double>(flags.shards));
  if (scrapes.shard_retrains.load() >= 0) {
    obs::GetGauge("ml4db.serve.shard_retrains_total")
        ->Set(scrapes.shard_retrains.load());
  }
  if (flags.admin_port > 0) {
    obs::GetCounter("ml4db.serve.scrapes_ok")->Inc(scrapes.ok.load());
    obs::GetCounter("ml4db.serve.scrapes_failed")->Inc(scrapes.failed.load());
    obs::GetCounter("ml4db.serve.scrape_bytes")->Inc(scrapes.bytes.load());
  }

  const auto lat = LatencyHist()->Snapshot();
  bench::PrintHeader("query serving under load");
  bench::Table table({"mode", "conns", "target_qps", "achieved_qps", "sent",
                      "ok", "error", "shed", "timeout", "shutdown", "lost",
                      "p50_us", "p95_us", "p99_us"});
  table.AddRow({flags.qps > 0 ? "open-loop" : "closed-loop",
                std::to_string(flags.connections), bench::Fmt(flags.qps, 0),
                bench::Fmt(achieved_qps, 1), std::to_string(sent),
                std::to_string(tally.ok.load()),
                std::to_string(tally.error.load()),
                std::to_string(tally.shed.load()),
                std::to_string(tally.timeout.load()),
                std::to_string(tally.shutdown.load()),
                std::to_string(tally.lost.load()), bench::Fmt(lat.p50, 0),
                bench::Fmt(lat.p95, 0), bench::Fmt(lat.p99, 0)});
  table.Print();
  if (flags.write_ratio > 0) {
    const auto wlat = WriteLatencyHist()->Snapshot();
    bench::Table wtable({"w_sent", "w_ok", "w_error", "w_shed", "w_timeout",
                         "w_lost", "w_p50_us", "w_p95_us", "delta_rows",
                         "stale_rows"});
    wtable.AddRow({std::to_string(wtally.sent.load()),
                   std::to_string(wtally.ok.load()),
                   std::to_string(wtally.error.load()),
                   std::to_string(wtally.shed.load()),
                   std::to_string(wtally.timeout.load()),
                   std::to_string(wtally.lost.load()),
                   bench::Fmt(wlat.p50, 0), bench::Fmt(wlat.p95, 0),
                   bench::Fmt(scrapes.delta_rows.load(), 0),
                   bench::Fmt(scrapes.stale_rows.load(), 0)});
    wtable.Print();
  }
  if (flags.admin_port > 0) {
    bench::Table scrape_table({"scrapes_ok", "scrapes_failed", "metrics_kb"});
    scrape_table.AddRow(
        {std::to_string(scrapes.ok.load()),
         std::to_string(scrapes.failed.load()),
         bench::Fmt(static_cast<double>(scrapes.bytes.load()) / 1024.0, 1)});
    scrape_table.Print();

    // Workload-profile health after the run: one /workload scrape folded
    // into gauges + a summary table, so the BENCH JSON records whether the
    // server actually fingerprinted the load (shape count, q-error level,
    // drift events). A 404 (obs-disabled server) skips this quietly.
    const auto wl = server::HttpGet(flags.host, flags.admin_port,
                                    "/workload?format=json&n=5");
    if (wl.ok() && wl->status_code == 200) {
      const auto doc = obs::JsonValue::Parse(wl->body);
      if (doc.ok()) {
        const double shapes = doc->GetNumber("shapes");
        const double samples = doc->GetNumber("samples");
        const double evictions = doc->GetNumber("evictions");
        const double drift_events = doc->GetNumber("drift_events");
        double top_qps = 0.0, top_qerr_p95 = 0.0, max_qerror = 0.0;
        if (const obs::JsonValue* top = doc->Find("top");
            top != nullptr && top->is_array() && top->size() > 0) {
          top_qps = top->items()[0].GetNumber("recent_qps");
          for (const obs::JsonValue& s : top->items()) {
            if (const obs::JsonValue* qe = s.Find("qerror"); qe != nullptr) {
              top_qerr_p95 =
                  std::max(top_qerr_p95, qe->GetNumber("recent_p95"));
              max_qerror = std::max(max_qerror, qe->GetNumber("max"));
            }
          }
        }
        obs::GetGauge("ml4db.serve.workload_shapes")->Set(shapes);
        obs::GetGauge("ml4db.serve.workload_samples")->Set(samples);
        obs::GetGauge("ml4db.serve.workload_evictions")->Set(evictions);
        obs::GetGauge("ml4db.serve.workload_drift_events")->Set(drift_events);
        obs::GetGauge("ml4db.serve.workload_max_qerror")->Set(max_qerror);
        bench::Table wl_table({"wl_shapes", "wl_samples", "wl_evictions",
                               "wl_drift", "top_qps", "qerr_p95",
                               "qerr_max"});
        wl_table.AddRow({bench::Fmt(shapes, 0), bench::Fmt(samples, 0),
                         bench::Fmt(evictions, 0),
                         bench::Fmt(drift_events, 0), bench::Fmt(top_qps, 1),
                         bench::Fmt(top_qerr_p95, 2),
                         bench::Fmt(max_qerror, 2)});
        wl_table.Print();
      }
    }

    // Index-fleet health after the run: one /indexes scrape stamped into
    // gauges + a summary table, so the BENCH JSON records probe-error
    // level and retrain activity alongside the serving numbers. The peak
    // gauge comes from the in-flight scrapes (a post-run snapshot can miss
    // the degraded window a retrain already recovered from). A 404
    // (obs-disabled server) skips this quietly.
    const auto fleet = server::HttpGet(flags.host, flags.admin_port,
                                       "/indexes?format=json");
    if (fleet.ok() && fleet->status_code == 200) {
      const auto doc = obs::JsonValue::Parse(fleet->body);
      if (doc.ok()) {
        const double entries = doc->GetNumber("entry_count");
        const double err_p95 = doc->GetNumber("probe_err_p95");
        const double retrains = doc->GetNumber("retrains");
        const double peak = scrapes.probe_err_p95_peak.load();
        // Per-structure sample counters reset at every swap, so report the
        // busiest snapshot (in-flight or post-run, whichever saw more).
        const double err_samples =
            std::max(doc->GetNumber("probe_err_samples"),
                     scrapes.probe_err_samples_peak.load());
        obs::GetGauge("ml4db.serve.index_entries")->Set(entries);
        obs::GetGauge("ml4db.serve.probe_err_p95")->Set(err_p95);
        obs::GetGauge("ml4db.serve.probe_err_samples")->Set(err_samples);
        obs::GetGauge("ml4db.serve.probe_err_p95_peak")
            ->Set(peak < 0 ? err_p95 : peak);
        obs::GetGauge("ml4db.serve.index_retrains")->Set(retrains);
        bench::Table fleet_table({"idx_entries", "probe_err_p95",
                                  "err_p95_peak", "err_samples",
                                  "idx_retrains"});
        fleet_table.AddRow({bench::Fmt(entries, 0), bench::Fmt(err_p95, 1),
                            bench::Fmt(peak < 0 ? err_p95 : peak, 1),
                            bench::Fmt(err_samples, 0),
                            bench::Fmt(retrains, 0)});
        fleet_table.Print();
      }
    }
  }

  if (flags.admin_port > 0 && scrapes.ok.load() == 0) {
    std::fprintf(stderr,
                 "bench_serve: FAIL — admin plane never answered a scrape\n");
    return 1;
  }
  if (tally.transport.load() + wtally.transport.load() > 0) {
    std::fprintf(stderr, "bench_serve: %llu transport errors\n",
                 static_cast<unsigned long long>(tally.transport.load() +
                                                 wtally.transport.load()));
  }
  const uint64_t lost = tally.lost.load() + wtally.lost.load();
  if (lost > 0) {
    std::fprintf(stderr, "bench_serve: FAIL — %llu responses lost\n",
                 static_cast<unsigned long long>(lost));
    return 1;
  }
  if (tally.ok.load() == 0) {
    std::fprintf(stderr, "bench_serve: FAIL — no query succeeded\n");
    return 1;
  }
  if (flags.write_ratio > 0 && wtally.sent.load() > 0 &&
      wtally.ok.load() == 0) {
    std::fprintf(stderr, "bench_serve: FAIL — no write succeeded\n");
    return 1;
  }
  return 0;
}
