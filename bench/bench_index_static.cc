// EXP-A — learned index vs B-tree on static data (paper §3.2, learned
// index basics): build time, structure size, and lookup latency for
// B+-tree / RMI / PGM / RadixSpline / ALEX across key distributions. The
// paper's claim: on static data the replacement-paradigm learned index
// wins on size and lookup speed. Lookup latency additionally measured via
// google-benchmark microbenchmarks at the bottom.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "learned_index/alex_index.h"
#include "learned_index/btree_index.h"
#include "learned_index/pgm_index.h"
#include "learned_index/radix_spline.h"
#include "learned_index/rmi_index.h"
#include "workload/data_gen.h"

namespace {

using namespace ml4db;
using learned_index::Entry;

constexpr size_t kKeys = 2'000'000;

std::vector<Entry> MakeEntries(workload::Distribution dist, uint64_t seed) {
  workload::DataGenOptions opts;
  opts.distribution = dist;
  opts.max_value = 4'000'000'000ULL;
  opts.seed = seed;
  const auto keys = workload::GenerateSortedUniqueKeys(kKeys, opts);
  std::vector<Entry> entries(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    entries[i] = {keys[i], static_cast<uint64_t>(i)};
  }
  return entries;
}

struct BuiltIndex {
  std::string name;
  std::unique_ptr<learned_index::OrderedIndex> index;
  double build_seconds = 0.0;
};

std::vector<BuiltIndex> BuildAll(const std::vector<Entry>& entries) {
  std::vector<BuiltIndex> out;
  auto add = [&](auto index_ptr) {
    BuiltIndex b;
    b.name = index_ptr->Name();
    Stopwatch sw;
    const Status st = index_ptr->BulkLoad(entries);
    b.build_seconds = sw.ElapsedSeconds();
    ML4DB_CHECK_MSG(st.ok(), "bulk load failed");
    b.index = std::move(index_ptr);
    out.push_back(std::move(b));
  };
  add(std::make_unique<learned_index::BTreeIndex>());
  add(std::make_unique<learned_index::RmiIndex>(4096));
  add(std::make_unique<learned_index::PgmIndex>(32));
  add(std::make_unique<learned_index::RadixSplineIndex>(32));
  add(std::make_unique<learned_index::AlexIndex>());
  return out;
}

void RunTable() {
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kLognormal,
        workload::Distribution::kClustered}) {
    bench::PrintHeader(std::string("EXP-A static index comparison, ") +
                       workload::DistributionName(dist) + " keys, " +
                       std::to_string(kKeys) + " keys");
    const auto entries = MakeEntries(dist, 1234);
    auto indexes = BuildAll(entries);

    // Lookup throughput: existing keys in random order.
    Rng rng(99);
    std::vector<int64_t> probes(200000);
    for (auto& p : probes) p = entries[rng.NextUint64(entries.size())].key;

    bench::Table table({"index", "build_s", "size_MB", "lookup_Mops",
                        "range1k_ms"});
    for (auto& b : indexes) {
      // Per-chunk lookup latency lands in a registry histogram (chunked so
      // clock reads stay off the per-probe path). Exported via --json.
      obs::Histogram* lookup_hist = obs::GetHistogram(
          "ml4db.index.lookup_us." + b.name,
          obs::ExponentialBounds(1e-3, 2.0, 30));
      constexpr size_t kChunk = 512;
      Stopwatch sw;
      uint64_t sink = 0;
      for (size_t start = 0; start < probes.size(); start += kChunk) {
        const size_t end = std::min(start + kChunk, probes.size());
        Stopwatch chunk_sw;
        for (size_t i = start; i < end; ++i) {
          uint64_t v;
          if (b.index->Lookup(probes[i], &v)) sink += v;
        }
        lookup_hist->Record(chunk_sw.ElapsedSeconds() * 1e6 /
                            static_cast<double>(end - start));
      }
      const double lookup_s = sw.ElapsedSeconds();
      benchmark::DoNotOptimize(sink);
      // 1000 range scans spanning ~1k keys each.
      sw.Reset();
      for (int i = 0; i < 1000; ++i) {
        const size_t a = rng.NextUint64(entries.size() - 1100);
        const auto r =
            b.index->RangeScan(entries[a].key, entries[a + 1000].key);
        benchmark::DoNotOptimize(r.size());
      }
      const double range_s = sw.ElapsedSeconds();
      table.AddRow({b.name, bench::Fmt(b.build_seconds, 3),
                    bench::Fmt(b.index->StructureBytes() / 1048576.0, 1),
                    bench::Fmt(probes.size() / lookup_s / 1e6, 2),
                    bench::Fmt(range_s * 1000.0 / 1000.0, 3)});
    }
    table.Print();
  }
  std::printf(
      "\nShape check (paper): learned indexes (rmi/pgm/radix_spline) should "
      "be smaller than btree and at least as fast on static lookups.\n");
}

// ------------------- google-benchmark microbenchmarks -----------------------

template <typename MakeIndexFn>
void LookupLoop(benchmark::State& state, workload::Distribution dist,
                MakeIndexFn make_index) {
  const auto entries = MakeEntries(dist, 5);
  auto index_ptr = make_index();
  auto& index = *index_ptr;
  ML4DB_CHECK(index.BulkLoad(entries).ok());
  Rng rng(7);
  size_t i = 0;
  std::vector<int64_t> probes(8192);
  for (auto& p : probes) p = entries[rng.NextUint64(entries.size())].key;
  for (auto _ : state) {
    uint64_t v = 0;
    benchmark::DoNotOptimize(index.Lookup(probes[i++ & 8191], &v));
    benchmark::DoNotOptimize(v);
  }
}

void BM_BtreeUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::BTreeIndex>(); });
}
void BM_RmiUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::RmiIndex>(4096); });
}
void BM_PgmUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::PgmIndex>(32); });
}
void BM_RadixSplineUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform, [] {
    return std::make_unique<learned_index::RadixSplineIndex>(32, 18);
  });
}
void BM_BtreeLognormal(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kLognormal,
             [] { return std::make_unique<learned_index::BTreeIndex>(); });
}
void BM_PgmLognormal(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kLognormal,
             [] { return std::make_unique<learned_index::PgmIndex>(32); });
}

}  // namespace

BENCHMARK(BM_BtreeUniform);
BENCHMARK(BM_RmiUniform);
BENCHMARK(BM_PgmUniform);
BENCHMARK(BM_RadixSplineUniform);
BENCHMARK(BM_BtreeLognormal);
BENCHMARK(BM_PgmLognormal);

int main(int argc, char** argv) {
  // Strip --json/--csv before google-benchmark sees (and rejects) them.
  ml4db::bench::InitBench("index_static", &argc, argv);
  RunTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
