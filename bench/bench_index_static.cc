// EXP-A — learned index vs B-tree on static data (paper §3.2, learned
// index basics): build time, structure size, and lookup latency for
// B+-tree / RMI / PGM / RadixSpline / ALEX across key distributions. The
// paper's claim: on static data the replacement-paradigm learned index
// wins on size and lookup speed. Lookup latency additionally measured via
// google-benchmark microbenchmarks at the bottom.
//
// Index builds and the lookup/range workload fan out over the shared
// thread pool (ML4DB_THREADS); per-phase wall-clock is recorded in the
// "parallel substrate" table so speedups are visible in the JSON export.
// ML4DB_BENCH_KEYS overrides the key count (CI smoke uses tiny inputs).

#include <benchmark/benchmark.h>

#include <atomic>
#include <future>
#include <thread>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "engine/database.h"
#include "engine/index_backend.h"
#include "engine/table.h"
#include "learned_index/alex_index.h"
#include "learned_index/btree_index.h"
#include "learned_index/pgm_index.h"
#include "learned_index/radix_spline.h"
#include "learned_index/rmi_index.h"
#include "workload/data_gen.h"

namespace {

using namespace ml4db;
using learned_index::Entry;

size_t NumKeys() {
  static const size_t n = [] {
    constexpr size_t kDefault = 2'000'000;
    const size_t v = static_cast<size_t>(
        common::PositiveKnobFromEnv("ML4DB_BENCH_KEYS", kDefault));
    // The range-scan workload samples windows of ~1.1k keys; keep enough
    // headroom that tiny smoke inputs still exercise every phase.
    return std::max<size_t>(v, 4096);
  }();
  return n;
}

std::vector<Entry> MakeEntries(workload::Distribution dist, uint64_t seed) {
  workload::DataGenOptions opts;
  opts.distribution = dist;
  opts.max_value = 4'000'000'000ULL;
  opts.seed = seed;
  const auto keys = workload::GenerateSortedUniqueKeys(NumKeys(), opts);
  std::vector<Entry> entries(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    entries[i] = {keys[i], static_cast<uint64_t>(i)};
  }
  return entries;
}

struct BuiltIndex {
  std::string name;
  std::unique_ptr<learned_index::OrderedIndex> index;
  double build_seconds = 0.0;
};

std::vector<BuiltIndex> BuildAll(const std::vector<Entry>& entries) {
  common::ThreadPool& pool = common::ThreadPool::Global();
  // Each bulk load is an independent pool job (BulkLoad is a per-concrete-
  // type method, hence the templated add). Builds that internally
  // ParallelFor (RMI/PGM/RadixSpline) nest safely because callers
  // participate in chunk execution. out is reserved up front so slot
  // pointers captured by in-flight jobs stay valid across push_backs.
  std::vector<BuiltIndex> out;
  out.reserve(5);
  std::vector<std::future<void>> pending;
  auto add = [&](auto index_ptr) {
    auto* raw = index_ptr.get();
    BuiltIndex b;
    b.name = raw->Name();
    b.index = std::move(index_ptr);
    out.push_back(std::move(b));
    BuiltIndex* slot = &out.back();
    pending.push_back(pool.Submit([&entries, raw, slot] {
      Stopwatch sw;
      const Status st = raw->BulkLoad(entries);
      slot->build_seconds = sw.ElapsedSeconds();
      ML4DB_CHECK_MSG(st.ok(), "bulk load failed");
    }));
  };
  add(std::make_unique<learned_index::BTreeIndex>());
  add(std::make_unique<learned_index::RmiIndex>(4096));
  add(std::make_unique<learned_index::PgmIndex>(32));
  add(std::make_unique<learned_index::RadixSplineIndex>(32));
  add(std::make_unique<learned_index::AlexIndex>());
  for (auto& f : pending) f.get();
  return out;
}

void RunTable() {
  common::ThreadPool& pool = common::ThreadPool::Global();
  double build_wall_s = 0.0, workload_wall_s = 0.0;
  for (auto dist :
       {workload::Distribution::kUniform, workload::Distribution::kLognormal,
        workload::Distribution::kClustered}) {
    bench::PrintHeader(std::string("EXP-A static index comparison, ") +
                       workload::DistributionName(dist) + " keys, " +
                       std::to_string(NumKeys()) + " keys");
    const auto entries = MakeEntries(dist, 1234);
    Stopwatch build_sw;
    auto indexes = BuildAll(entries);
    build_wall_s += build_sw.ElapsedSeconds();

    // Lookup throughput: existing keys in random order. Probes and range
    // starts are sampled serially (Rng is single-threaded); the measured
    // workload itself fans out over the pool.
    Rng rng(99);
    std::vector<int64_t> probes(200000);
    for (auto& p : probes) p = entries[rng.NextUint64(entries.size())].key;
    std::vector<size_t> range_starts(1000);
    for (auto& a : range_starts) a = rng.NextUint64(entries.size() - 1100);

    Stopwatch workload_sw;
    bench::Table table({"index", "build_s", "size_MB", "lookup_Mops",
                        "range1k_ms"});
    for (auto& b : indexes) {
      // Per-chunk lookup latency lands in a registry histogram (chunked so
      // clock reads stay off the per-probe path). Histogram::Record is a
      // relaxed atomic, so concurrent chunks record safely.
      obs::Histogram* lookup_hist = obs::GetHistogram(
          "ml4db.index.lookup_us." + b.name,
          obs::ExponentialBounds(1e-3, 2.0, 30));
      constexpr size_t kChunk = 512;
      std::atomic<uint64_t> sink{0};
      Stopwatch sw;
      pool.ParallelFor(0, probes.size(), kChunk, [&](size_t start, size_t end) {
        Stopwatch chunk_sw;
        uint64_t local = 0;
        for (size_t i = start; i < end; ++i) {
          uint64_t v;
          if (b.index->Lookup(probes[i], &v)) local += v;
        }
        lookup_hist->Record(chunk_sw.ElapsedSeconds() * 1e6 /
                            static_cast<double>(end - start));
        sink.fetch_add(local, std::memory_order_relaxed);
      });
      const double lookup_s = sw.ElapsedSeconds();
      benchmark::DoNotOptimize(sink.load());
      // 1000 range scans spanning ~1k keys each.
      sw.Reset();
      pool.ParallelFor(0, range_starts.size(), 32, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const size_t a = range_starts[i];
          const auto r =
              b.index->RangeScan(entries[a].key, entries[a + 1000].key);
          benchmark::DoNotOptimize(r.size());
        }
      });
      const double range_s = sw.ElapsedSeconds();
      table.AddRow({b.name, bench::Fmt(b.build_seconds, 3),
                    bench::Fmt(b.index->StructureBytes() / 1048576.0, 1),
                    bench::Fmt(probes.size() / lookup_s / 1e6, 2),
                    bench::Fmt(range_s * 1000.0 / 1000.0, 3)});
    }
    workload_wall_s += workload_sw.ElapsedSeconds();
    table.Print();
  }
  bench::PrintHeader("parallel substrate: phase wall-clock");
  bench::Table phases({"threads", "build_wall_s", "workload_wall_s"});
  phases.AddRow({std::to_string(pool.size()), bench::Fmt(build_wall_s, 3),
                 bench::Fmt(workload_wall_s, 3)});
  phases.Print();
  std::printf(
      "\nShape check (paper): learned indexes (rmi/pgm/radix_spline) should "
      "be smaller than btree and at least as fast on static lookups.\n");
}

// ------------------- engine IndexBackend parity -----------------------------

// EXP-A2 — the same structures, probed through the engine's unified
// IndexBackend layer on a duplicated-key column (what Table columns look
// like, unlike OrderedIndex's unique-key contract). Every backend must
// return identical result counts for the same probes; `sorted` is the
// oracle when more than one backend runs.
void RunEngineBackendParity(const std::string& selector) {
  std::vector<engine::IndexBackendKind> kinds;
  if (selector == "all") {
    kinds = engine::AllIndexBackendKinds();
  } else {
    const auto kind = engine::ParseIndexBackendKind(selector);
    ML4DB_CHECK_MSG(kind.ok(), "bad --index-backend value");
    kinds = {*kind};
  }

  workload::DataGenOptions opts;
  opts.distribution = workload::Distribution::kUniform;
  opts.max_value = 4'000'000'000ULL;
  opts.seed = 1234;
  const auto keys = workload::GenerateSortedUniqueKeys(NumKeys(), opts);

  // Column rows: every key once, ~25% twice, in shuffled order.
  engine::Column col;
  col.type = engine::DataType::kInt64;
  col.i64.reserve(keys.size() + keys.size() / 4);
  Rng rng(321);
  for (int64_t k : keys) {
    col.i64.push_back(k);
    if (rng.NextUint64(4) == 0) col.i64.push_back(k);
  }
  for (size_t i = col.i64.size(); i > 1; --i) {
    std::swap(col.i64[i - 1], col.i64[rng.NextUint64(i)]);
  }

  std::vector<double> eq_probes(100000);
  for (auto& p : eq_probes) {
    p = static_cast<double>(keys[rng.NextUint64(keys.size())]);
  }
  std::vector<size_t> range_starts(1000);
  for (auto& a : range_starts) a = rng.NextUint64(keys.size() - 1100);

  bench::PrintHeader("EXP-A2 engine IndexBackend parity, " +
                     std::to_string(col.i64.size()) + " rows (--index-backend " +
                     selector + ")");
  common::ThreadPool& pool = common::ThreadPool::Global();
  bench::Table table({"backend", "build_s", "size_MB", "equal_hits",
                      "range_rows", "equal_Mops", "range1k_ms"});
  uint64_t oracle_equal = 0, oracle_range = 0;
  bool have_oracle = false;
  for (const engine::IndexBackendKind kind : kinds) {
    Stopwatch build_sw;
    auto built = engine::BuildIndexBackend(col, kind);
    ML4DB_CHECK_MSG(built.ok(), "backend build failed");
    const double build_s = build_sw.ElapsedSeconds();
    const engine::IndexBackend& index = **built;

    std::atomic<uint64_t> equal_hits{0};
    Stopwatch sw;
    pool.ParallelFor(0, eq_probes.size(), 512, [&](size_t lo, size_t hi) {
      uint64_t local = 0;
      for (size_t i = lo; i < hi; ++i) local += index.Equal(eq_probes[i]).size();
      equal_hits.fetch_add(local, std::memory_order_relaxed);
    });
    const double equal_s = sw.ElapsedSeconds();

    std::atomic<uint64_t> range_rows{0};
    sw.Reset();
    pool.ParallelFor(0, range_starts.size(), 32, [&](size_t lo, size_t hi) {
      uint64_t local = 0;
      for (size_t i = lo; i < hi; ++i) {
        const size_t a = range_starts[i];
        local += index
                     .Range(static_cast<double>(keys[a]),
                            static_cast<double>(keys[a + 1000]))
                     .size();
      }
      range_rows.fetch_add(local, std::memory_order_relaxed);
    });
    const double range_s = sw.ElapsedSeconds();

    if (!have_oracle) {
      oracle_equal = equal_hits.load();
      oracle_range = range_rows.load();
      have_oracle = true;
    } else {
      // Identical result counts across backends on the same seed is the
      // whole point of the unified layer; a mismatch is a bug, not noise.
      ML4DB_CHECK_MSG(equal_hits.load() == oracle_equal,
                      "backend equal-probe result mismatch");
      ML4DB_CHECK_MSG(range_rows.load() == oracle_range,
                      "backend range-probe result mismatch");
    }
    table.AddRow({index.Name(), bench::Fmt(build_s, 3),
                  bench::Fmt(index.StructureBytes() / 1048576.0, 2),
                  bench::FmtInt(static_cast<double>(equal_hits.load())),
                  bench::FmtInt(static_cast<double>(range_rows.load())),
                  bench::Fmt(eq_probes.size() / equal_s / 1e6, 2),
                  bench::Fmt(range_s * 1000.0, 3)});
  }
  table.Print();
}

// ------------------- sharded scatter-gather scan scaling --------------------

// EXP-A3 — the same table hash-partitioned into {1,2,4,8} shards, full
// COUNT(*) scans through the executor. Sharded scans fan one task per
// shard across the pool, so with ML4DB_THREADS >= N the N-shard scan
// should approach an N-fold wall-clock speedup over the 1-shard (serial)
// baseline. The observed speedup at the widest layout lands in
// ml4db.bench.shard_scan_speedup for downstream JSON checks.
void RunShardScaling() {
  const size_t rows = NumKeys();
  common::ThreadPool& pool = common::ThreadPool::Global();
  const unsigned hw_cores = std::max(1u, std::thread::hardware_concurrency());
  bench::PrintHeader("EXP-A3 sharded scan scaling, " + std::to_string(rows) +
                     " rows, " + std::to_string(pool.size()) + " threads, " +
                     std::to_string(hw_cores) + " cores");
  std::vector<std::vector<int64_t>> cols(2);
  cols[0].reserve(rows);
  cols[1].reserve(rows);
  Rng rng(4242);
  for (size_t i = 0; i < rows; ++i) {
    cols[0].push_back(static_cast<int64_t>(i));
    cols[1].push_back(static_cast<int64_t>(rng.NextUint64(1000)));
  }

  bench::Table table({"shards", "scan_ms", "speedup"});
  double base_ms = 0.0, speedup_at_max = 1.0;
  int max_shards = 1;
  for (int shards : {1, 2, 4, 8}) {
    engine::DatabaseOptions dopts;
    dopts.partition.shards = shards;
    engine::Database db(dopts);
    engine::TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", engine::DataType::kInt64},
                      {"val", engine::DataType::kInt64}};
    auto created = db.catalog().CreateTable(schema);
    ML4DB_CHECK_MSG(created.ok(), "sweep table create failed");
    ML4DB_CHECK_MSG((*created)->AppendColumnarInt64(cols).ok(),
                    "sweep load failed");
    ML4DB_CHECK_MSG(db.AnalyzeAll().ok(), "sweep analyze failed");

    engine::Query q;  // unfiltered COUNT(*): every shard scans fully
    q.tables = {"t"};
    double best_s = 1e30;
    uint64_t count = 0;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch sw;
      const auto result = db.Run(q);
      const double s = sw.ElapsedSeconds();
      ML4DB_CHECK_MSG(result.ok(), "sweep scan failed");
      count = result->count;
      best_s = std::min(best_s, s);
    }
    ML4DB_CHECK_MSG(count == rows, "sweep scan dropped rows");
    const double ms = best_s * 1000.0;
    if (shards == 1) base_ms = ms;
    const double speedup = ms > 0 ? base_ms / ms : 0.0;
    if (shards >= max_shards) {
      max_shards = shards;
      speedup_at_max = speedup;
    }
    obs::GetGauge("ml4db.bench.shard_scan_ms.s" + std::to_string(shards))
        ->Set(ms);
    table.AddRow({std::to_string(shards), bench::Fmt(ms, 3),
                  bench::Fmt(speedup, 2)});
  }
  obs::GetGauge("ml4db.bench.shard_scan_speedup")->Set(speedup_at_max);
  obs::GetGauge("ml4db.bench.shard_scan_max_shards")
      ->Set(static_cast<double>(max_shards));
  obs::GetGauge("ml4db.bench.shard_scan_hw_cores")
      ->Set(static_cast<double>(hw_cores));
  table.Print();
  std::printf(
      "\nShape check: scan_ms should fall near-linearly with shards while "
      "ML4DB_THREADS covers them (speedup -> shard count). Wall-clock "
      "speedup is bounded by physical cores: on this host at most %u-way.\n",
      hw_cores);
}

// ------------------- google-benchmark microbenchmarks -----------------------

template <typename MakeIndexFn>
void LookupLoop(benchmark::State& state, workload::Distribution dist,
                MakeIndexFn make_index) {
  const auto entries = MakeEntries(dist, 5);
  auto index_ptr = make_index();
  auto& index = *index_ptr;
  ML4DB_CHECK(index.BulkLoad(entries).ok());
  Rng rng(7);
  size_t i = 0;
  std::vector<int64_t> probes(8192);
  for (auto& p : probes) p = entries[rng.NextUint64(entries.size())].key;
  for (auto _ : state) {
    uint64_t v = 0;
    benchmark::DoNotOptimize(index.Lookup(probes[i++ & 8191], &v));
    benchmark::DoNotOptimize(v);
  }
}

void BM_BtreeUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::BTreeIndex>(); });
}
void BM_RmiUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::RmiIndex>(4096); });
}
void BM_PgmUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform,
             [] { return std::make_unique<learned_index::PgmIndex>(32); });
}
void BM_RadixSplineUniform(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kUniform, [] {
    return std::make_unique<learned_index::RadixSplineIndex>(32, 18);
  });
}
void BM_BtreeLognormal(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kLognormal,
             [] { return std::make_unique<learned_index::BTreeIndex>(); });
}
void BM_PgmLognormal(benchmark::State& s) {
  LookupLoop(s, workload::Distribution::kLognormal,
             [] { return std::make_unique<learned_index::PgmIndex>(32); });
}

}  // namespace

BENCHMARK(BM_BtreeUniform);
BENCHMARK(BM_RmiUniform);
BENCHMARK(BM_PgmUniform);
BENCHMARK(BM_RadixSplineUniform);
BENCHMARK(BM_BtreeLognormal);
BENCHMARK(BM_PgmLognormal);

int main(int argc, char** argv) {
  // Strip --json/--csv before google-benchmark sees (and rejects) them.
  ml4db::bench::InitBench("index_static", &argc, argv);
  // Strip --index-backend for the same reason. Selects which engine
  // backend(s) the parity phase probes; "all" cross-checks every backend
  // against the sorted oracle.
  std::string backend = "all";
  {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--index-backend" && i + 1 < argc) {
        backend = argv[++i];
      } else if (arg.rfind("--index-backend=", 0) == 0) {
        backend = arg.substr(sizeof("--index-backend=") - 1);
      } else {
        argv[w++] = argv[i];
      }
    }
    argc = w;
    argv[argc] = nullptr;
  }
  ml4db::bench::SetBenchConfig("index_backend", backend);
  ml4db::bench::SetBenchConfig("shards", "1,2,4,8");
  ml4db::bench::SetBenchConfig("shard_sweep", "hash");
  RunTable();
  RunEngineBackendParity(backend);
  RunShardScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
