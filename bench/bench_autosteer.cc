// EXP-N — AutoSteer vs Bao (paper §3.2): dynamically discovered hint sets
// should rival the hand-crafted Bao arm collection without requiring one,
// at the cost of extra planning calls for discovery.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "optimizer/autosteer.h"
#include "optimizer/bao.h"
#include "optimizer/harness.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("autosteer", &argc, argv);
  using namespace ml4db;
  using namespace ml4db::optimizer;
  bench::BenchDb bdb =
      bench::MakeBenchDb(81, 30000, 1500, 4, bench::MiscalibratedHardware());
  engine::Database& db = *bdb.db;

  BaoOptimizer bao(&db, BaoOptimizer::Options{});
  AutoSteer steer(&db, AutoSteer::Options{});

  const int kTrain = 120;
  for (const auto& q : bdb.gen->Batch(kTrain)) {
    ML4DB_CHECK(bao.RunAndLearn(q).ok());
    ML4DB_CHECK(steer.RunAndLearn(q).ok());
  }

  const auto test = bdb.gen->Batch(60);
  const WorkloadReport expert = EvaluatePlanner(db, test, ExpertPlanner(db));

  auto eval_bao = [&] {
    std::vector<double> lat;
    for (const auto& q : test) {
      auto c = bao.ChoosePlan(q);
      ML4DB_CHECK(c.ok());
      auto r = db.Execute(q, &c->plan);
      ML4DB_CHECK(r.ok());
      lat.push_back(r->latency);
    }
    return lat;
  };
  auto eval_steer = [&] {
    std::vector<double> lat;
    for (const auto& q : test) {
      auto c = steer.ChoosePlan(q);
      ML4DB_CHECK(c.ok());
      auto r = db.Execute(q, &c->plan);
      ML4DB_CHECK(r.ok());
      lat.push_back(r->latency);
    }
    return lat;
  };

  const auto bao_lat = eval_bao();
  const auto steer_lat = eval_steer();

  bench::PrintHeader("EXP-N AutoSteer (discovered arms) vs Bao (hand-crafted)");
  bench::Table table({"optimizer", "arms", "mean", "p50", "p99", "vs_expert"});
  auto total = [](const std::vector<double>& v) {
    double t = 0;
    for (double x : v) t += x;
    return t;
  };
  table.AddRow({"expert", "1", bench::Fmt(expert.mean, 1),
                bench::Fmt(expert.p50, 1), bench::Fmt(expert.p99, 1), "1.000"});
  table.AddRow({"bao(hand-crafted)", std::to_string(bao.num_arms()),
                bench::Fmt(Mean(bao_lat), 1),
                bench::Fmt(Quantile(bao_lat, 0.5), 1),
                bench::Fmt(Quantile(bao_lat, 0.99), 1),
                bench::Fmt(total(bao_lat) / expert.total, 3)});
  table.AddRow({"autosteer(discovered)", std::to_string(steer.discovered_arms()),
                bench::Fmt(Mean(steer_lat), 1),
                bench::Fmt(Quantile(steer_lat, 0.5), 1),
                bench::Fmt(Quantile(steer_lat, 0.99), 1),
                bench::Fmt(total(steer_lat) / expert.total, 3)});
  table.Print();
  std::printf(
      "\nShape check (paper): autosteer ends within a few percent of bao "
      "(or better) without a hand-crafted hint-set collection; both at or "
      "below the expert's total.\n");
  return 0;
}
