// EXP-V — vectorized scan kernels: rows/sec of the batched predicate
// kernels (engine/vec) against the scalar reference loop (batch size 1,
// the pre-vectorization executor body) on the seq-scan filter path, at
// selectivities {0.001, 0.1, 0.9} and shards {1, 4}. Both paths run in
// one process over the same sealed table, so the comparison isolates the
// kernel (selection vectors over contiguous column chunks vs per-row
// virtual-ish dispatch through the ReadView) from everything else.
//
// Exports (--json): the per-combination table plus ml4db.kernels.* gauges
// for the headline combo (selectivity 0.001, 1 shard — the selective
// filter scan the ISSUE's >= 1.5x acceptance bar is measured on),
// validated by scripts/check_bench_json.py --require-kernels.
//
// Knobs: ML4DB_BENCH_ROWS (table size, default 2M), ML4DB_BATCH_ROWS
// (vectorized batch size, default 1024).

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "engine/database.h"
#include "engine/table.h"
#include "engine/vec/kernels.h"

namespace {

using namespace ml4db;

/// val is uniform over [0, kValDomain): a kLt predicate at
/// kValDomain * selectivity passes that fraction of rows.
constexpr int64_t kValDomain = 1000;

engine::FilterPredicate SelPred(double selectivity) {
  engine::FilterPredicate f;
  f.column = 1;
  f.op = engine::CompareOp::kLt;
  f.value = static_cast<double>(kValDomain) * selectivity;
  return f;
}

/// One timed pass: the filter kernel over every shard of the view at the
/// given batch size. Returns rows scanned (the denominator is constant
/// across batch sizes — output size varies with selectivity, input does
/// not).
size_t ScanOnce(const engine::Table::ReadView& view,
                const std::vector<engine::FilterPredicate>& filters,
                size_t batch_rows, std::vector<uint32_t>* out) {
  size_t scanned = 0;
  for (int s = 0; s < view.shard_count(); ++s) {
    out->clear();
    engine::vec::FilterRange(view, s, 0, view.ShardRows(s), filters, out,
                             batch_rows);
    scanned += view.ShardRows(s);
  }
  return scanned;
}

double RowsPerSec(const engine::Table::ReadView& view,
                  const std::vector<engine::FilterPredicate>& filters,
                  size_t batch_rows, size_t target_rows) {
  std::vector<uint32_t> out;
  ScanOnce(view, filters, batch_rows, &out);  // warmup (faults pages in)
  size_t scanned = 0;
  Stopwatch sw;
  while (scanned < target_rows) {
    scanned += ScanOnce(view, filters, batch_rows, &out);
  }
  const double secs = sw.ElapsedSeconds();
  return secs > 0 ? static_cast<double>(scanned) / secs : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("scan_kernels", &argc, argv);

  const size_t rows = static_cast<size_t>(
      common::PositiveKnobFromEnv("ML4DB_BENCH_ROWS", 2'000'000));
  // Enough repeat passes to dominate timer noise even on the tiny CI input.
  const size_t target_rows = rows * 4;
  const size_t batch = engine::vec::BatchRows();
  bench::SetBenchConfig("rows", std::to_string(rows));
  bench::SetBenchConfig("batch_rows", std::to_string(batch));

  bench::PrintHeader("EXP-V scan kernels: scalar vs vectorized rows/sec");
  bench::Table table({"shards", "selectivity", "scalar_rows_per_sec",
                      "vector_rows_per_sec", "speedup"});

  double headline_scalar = 0, headline_vector = 0;
  for (int shards : {1, 4}) {
    engine::DatabaseOptions dopts;
    dopts.partition.shards = shards;
    engine::Database db(dopts);
    engine::TableSchema schema;
    schema.name = "scan";
    schema.columns = {{"id", engine::DataType::kInt64},
                      {"val", engine::DataType::kInt64}};
    auto created = db.catalog().CreateTable(schema);
    ML4DB_CHECK(created.ok());
    engine::Table* t = *created;
    std::vector<std::vector<int64_t>> cols(2);
    for (size_t i = 0; i < rows; ++i) {
      cols[0].push_back(static_cast<int64_t>(i));
      // splitmix-ish scramble keeps values uncorrelated with position so
      // the branchy scalar loop can't ride the branch predictor.
      uint64_t x = i * 0x9e3779b97f4a7c15ULL;
      x ^= x >> 31;
      cols[1].push_back(static_cast<int64_t>(x % kValDomain));
    }
    ML4DB_CHECK(t->AppendColumnarInt64(cols).ok());
    t->Seal();
    const engine::Table::ReadView view = t->View();

    for (double sel : {0.001, 0.1, 0.9}) {
      const std::vector<engine::FilterPredicate> filters = {SelPred(sel)};
      const double scalar = RowsPerSec(view, filters, 1, target_rows);
      const double vectored = RowsPerSec(view, filters, batch, target_rows);
      const double speedup = scalar > 0 ? vectored / scalar : 0.0;
      table.AddRow({std::to_string(shards), bench::Fmt(sel, 3),
                    bench::FmtInt(scalar), bench::FmtInt(vectored),
                    bench::Fmt(speedup, 2)});
      if (shards == 1 && sel == 0.001) {
        headline_scalar = scalar;
        headline_vector = vectored;
      }
    }
  }
  table.Print();

  // Headline gauges (selective filter, 1 shard): what the CI schema check
  // requires and the acceptance speedup is read from.
  obs::GetGauge("ml4db.kernels.scalar_rows_per_sec")->Set(headline_scalar);
  obs::GetGauge("ml4db.kernels.vector_rows_per_sec")->Set(headline_vector);
  obs::GetGauge("ml4db.kernels.speedup")
      ->Set(headline_scalar > 0 ? headline_vector / headline_scalar : 0.0);
  obs::GetGauge("ml4db.kernels.batch_rows")
      ->Set(static_cast<double>(batch));

  std::printf(
      "\nShape check: vectorized >= 1.5x scalar on the selective filter "
      "(sel=0.001, 1 shard); the gap narrows as selectivity rises and "
      "output assembly dominates.\n");
  return 0;
}
