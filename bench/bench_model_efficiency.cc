// EXP-J — model efficiency (paper §3.3, open problem 1): the lightweight
// Bayesian model (NNGP-style random-feature GP) vs the deep TreeLSTM
// estimator on single-table cardinality estimation: model size, training
// time, inference time, accuracy. The paper's point (Zhao et al.): the
// lightweight model trains orders of magnitude faster at competitive
// accuracy.
//
// The workload (label collection) phase runs through the executor's batch
// API and the independent per-model training loops run as shared-pool
// jobs, so ML4DB_THREADS scales both phases; wall-clock for each lands in
// the "parallel substrate" table of the JSON export.

#include <future>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "costest/estimators.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("model_efficiency", &argc, argv);
  using namespace ml4db;
  common::ThreadPool& pool = common::ThreadPool::Global();
  bench::BenchDb bdb = bench::MakeBenchDb(121, 40000, 2000, 4);
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});

  // Single-table workload against the fact table.
  workload::QueryGenOptions qopts;
  qopts.min_tables = 1;
  qopts.max_tables = 1;
  qopts.max_filters = 3;
  qopts.seed = 122;
  workload::QueryGenerator gen(bdb.schema_ptr.get(), qopts);
  auto next_fact = [&] {
    while (true) {
      engine::Query q = gen.Next();
      if (q.tables[0] == "fact") return q;
    }
  };

  const int kTrain = 400, kTest = 150;
  const size_t n = static_cast<size_t>(kTrain + kTest);
  std::vector<engine::Query> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) queries.push_back(next_fact());

  // Workload phase: plan serially (cheap), execute as one parallel batch
  // to collect the training labels, then featurize across the pool.
  Stopwatch workload_sw;
  std::vector<engine::PhysicalPlan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    auto plan = db.Plan(queries[i]);
    ML4DB_CHECK(plan.ok());
    plans[i] = std::move(*plan);
  }
  std::vector<engine::Executor::BatchQuery> batch(n);
  for (size_t i = 0; i < n; ++i) batch[i] = {&queries[i], &plans[i]};
  const auto results = db.executor().ExecuteBatch(batch);
  std::vector<double> cards(n), latencies(n);
  for (size_t i = 0; i < n; ++i) {
    ML4DB_CHECK(results[i].ok());
    cards[i] = static_cast<double>(results[i]->count);
    latencies[i] = results[i]->latency;
  }
  std::vector<ml::FeatureTree> trees(n);
  pool.ParallelFor(0, n, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      trees[i] = featurizer.Encode(queries[i], *plans[i].root);
    }
  });
  const double workload_wall_s = workload_sw.ElapsedSeconds();

  bench::PrintHeader("EXP-J model efficiency: deep vs lightweight card-est");
  bench::Table table({"model", "params", "train_s", "infer_us", "qerr_p50",
                      "qerr_p99"});

  struct ModelRow {
    std::vector<std::string> cells;
  };

  // --- deep: TreeLSTM estimator ---
  auto train_deep = [&]() -> ModelRow {
    costest::E2eCostEstimator::Options eopts;
    eopts.epochs = 30;
    costest::E2eCostEstimator deep(featurizer.dim(), eopts);
    std::vector<costest::PlanSample> samples(kTrain);
    for (int i = 0; i < kTrain; ++i) {
      samples[i].tree = trees[i];
      samples[i].latency = latencies[i];
      samples[i].cardinality = cards[i];
    }
    Stopwatch sw;
    deep.Train(samples);
    const double train_s = sw.ElapsedSeconds();
    sw.Reset();
    std::vector<double> est, truth;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(deep.EstimateCardinality(trees[i]));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    return {{"treelstm(e2e)", std::to_string(deep.NumParams()),
             bench::Fmt(train_s, 2), bench::Fmt(infer_us, 1),
             bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)}};
  };

  // --- lightweight: random-feature GP ---
  auto train_gp = [&]() -> ModelRow {
    auto vec = std::make_shared<costest::SingleTableVectorizer>(&db, "fact");
    costest::LwGpEstimator gp(vec, costest::LwGpEstimator::Options{});
    Stopwatch sw;
    for (int i = 0; i < kTrain; ++i) gp.Observe(queries[i], cards[i]);
    const double train_s = sw.ElapsedSeconds();
    sw.Reset();
    std::vector<double> est, truth;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(gp.EstimateCardinality(queries[i]));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    return {{"lw-gp(nngp)", std::to_string(gp.NumParams()),
             bench::Fmt(train_s, 2), bench::Fmt(infer_us, 1),
             bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)}};
  };

  // Training phase: the models are independent, so each trains as its own
  // pool job (Baihe-style training isolation; with ML4DB_THREADS=1 they
  // run inline, exactly as the serial bench did).
  Stopwatch train_sw;
  auto deep_future = pool.Submit(train_deep);
  auto gp_future = pool.Submit(train_gp);
  const ModelRow deep_row = deep_future.get();
  const ModelRow gp_row = gp_future.get();
  const double train_wall_s = train_sw.ElapsedSeconds();
  table.AddRow(deep_row.cells);
  table.AddRow(gp_row.cells);

  // --- classical: histogram estimator (no training) ---
  {
    std::vector<double> est, truth;
    Stopwatch sw;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(db.card_estimator().EstimateScan(queries[i], 0));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    table.AddRow({"histogram(classical)", "0", "0.00", bench::Fmt(infer_us, 1),
                  bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)});
  }
  table.Print();

  bench::PrintHeader("parallel substrate: phase wall-clock");
  bench::Table phases({"threads", "workload_wall_s", "train_wall_s"});
  phases.AddRow({std::to_string(pool.size()), bench::Fmt(workload_wall_s, 3),
                 bench::Fmt(train_wall_s, 3)});
  phases.Print();

  std::printf(
      "\nShape check (paper): lw-gp trains orders of magnitude faster than "
      "the deep model at comparable (or better) q-error; the classical "
      "histogram is free but suffers under correlated multi-filter "
      "predicates (independence assumption).\n");
  return 0;
}
