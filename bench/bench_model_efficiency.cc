// EXP-J — model efficiency (paper §3.3, open problem 1): the lightweight
// Bayesian model (NNGP-style random-feature GP) vs the deep TreeLSTM
// estimator on single-table cardinality estimation: model size, training
// time, inference time, accuracy. The paper's point (Zhao et al.): the
// lightweight model trains orders of magnitude faster at competitive
// accuracy.

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "costest/estimators.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("model_efficiency", &argc, argv);
  using namespace ml4db;
  bench::BenchDb bdb = bench::MakeBenchDb(121, 40000, 2000, 4);
  engine::Database& db = *bdb.db;
  planrepr::PlanFeaturizer featurizer(&db, planrepr::FeatureConfig{});

  // Single-table workload against the fact table.
  workload::QueryGenOptions qopts;
  qopts.min_tables = 1;
  qopts.max_tables = 1;
  qopts.max_filters = 3;
  qopts.seed = 122;
  workload::QueryGenerator gen(bdb.schema_ptr.get(), qopts);
  auto next_fact = [&] {
    while (true) {
      engine::Query q = gen.Next();
      if (q.tables[0] == "fact") return q;
    }
  };

  const int kTrain = 400, kTest = 150;
  std::vector<engine::Query> queries;
  std::vector<double> cards;
  std::vector<ml::FeatureTree> trees;
  std::vector<double> latencies;
  for (int i = 0; i < kTrain + kTest; ++i) {
    engine::Query q = next_fact();
    auto plan = db.Plan(q);
    ML4DB_CHECK(plan.ok());
    auto r = db.Execute(q, &*plan);
    ML4DB_CHECK(r.ok());
    queries.push_back(q);
    cards.push_back(static_cast<double>(r->count));
    trees.push_back(featurizer.Encode(q, *plan->root));
    latencies.push_back(r->latency);
  }

  bench::PrintHeader("EXP-J model efficiency: deep vs lightweight card-est");
  bench::Table table({"model", "params", "train_s", "infer_us", "qerr_p50",
                      "qerr_p99"});

  // --- deep: TreeLSTM estimator ---
  {
    costest::E2eCostEstimator::Options eopts;
    eopts.epochs = 30;
    costest::E2eCostEstimator deep(featurizer.dim(), eopts);
    std::vector<costest::PlanSample> samples(kTrain);
    for (int i = 0; i < kTrain; ++i) {
      samples[i].tree = trees[i];
      samples[i].latency = latencies[i];
      samples[i].cardinality = cards[i];
    }
    Stopwatch sw;
    deep.Train(samples);
    const double train_s = sw.ElapsedSeconds();
    sw.Reset();
    std::vector<double> est, truth;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(deep.EstimateCardinality(trees[i]));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    table.AddRow({"treelstm(e2e)", std::to_string(deep.NumParams()),
                  bench::Fmt(train_s, 2), bench::Fmt(infer_us, 1),
                  bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)});
  }
  // --- lightweight: random-feature GP ---
  {
    auto vec = std::make_shared<costest::SingleTableVectorizer>(&db, "fact");
    costest::LwGpEstimator gp(vec, costest::LwGpEstimator::Options{});
    Stopwatch sw;
    for (int i = 0; i < kTrain; ++i) gp.Observe(queries[i], cards[i]);
    const double train_s = sw.ElapsedSeconds();
    sw.Reset();
    std::vector<double> est, truth;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(gp.EstimateCardinality(queries[i]));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    table.AddRow({"lw-gp(nngp)", std::to_string(gp.NumParams()),
                  bench::Fmt(train_s, 2), bench::Fmt(infer_us, 1),
                  bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)});
  }
  // --- classical: histogram estimator (no training) ---
  {
    std::vector<double> est, truth;
    Stopwatch sw;
    for (int i = kTrain; i < kTrain + kTest; ++i) {
      est.push_back(db.card_estimator().EstimateScan(queries[i], 0));
      truth.push_back(cards[i]);
    }
    const double infer_us = sw.ElapsedSeconds() * 1e6 / kTest;
    const auto s = ml::SummarizeQErrors(est, truth);
    table.AddRow({"histogram(classical)", "0", "0.00", bench::Fmt(infer_us, 1),
                  bench::Fmt(s.median, 2), bench::Fmt(s.p99, 1)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): lw-gp trains orders of magnitude faster than "
      "the deep model at comparable (or better) q-error; the classical "
      "histogram is free but suffers under correlated multi-filter "
      "predicates (independence assumption).\n");
  return 0;
}
