// EXP-E — ML-enhanced bulk loading (paper §3.2): PLATON's MCTS-learned
// top-down packing vs STR, optimized for a given data + workload instance.
// Judged on held-out queries from the training workload distribution and
// on a mismatched distribution (generalization probe).

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "spatial/platon.h"
#include "workload/spatial_gen.h"

namespace {

using namespace ml4db;
using namespace ml4db::spatial;

Rect ToRect(const workload::Rect2& r) { return {r.xlo, r.ylo, r.xhi, r.yhi}; }

double AvgAccesses(const RTree& tree, const std::vector<workload::Rect2>& wq) {
  double acc = 0;
  for (const auto& q : wq) {
    acc += static_cast<double>(tree.RangeQuery(ToRect(q)).nodes_accessed);
  }
  return acc / static_cast<double>(wq.size());
}

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("rtree_packing", &argc, argv);
  using namespace ml4db;
  constexpr size_t kObjects = 200'000;
  workload::SpatialGenOptions data_opts;
  data_opts.distribution = workload::SpatialDistribution::kClustered;
  data_opts.num_clusters = 8;
  data_opts.seed = 41;
  const auto pts = workload::GeneratePoints(kObjects, data_opts);
  std::vector<SpatialEntry> entries(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    entries[i] = {Rect::FromPoint({pts[i].x, pts[i].y}), i};
  }

  // Training workload: queries concentrated in one hot region (SKEWED
  // relative to the data) — the data+workload-instance setting PLATON
  // optimizes for.
  workload::SpatialGenOptions q_opts;
  q_opts.distribution = workload::SpatialDistribution::kSkewed;
  q_opts.seed = 42;
  bench::PrintHeader("EXP-E packing: PLATON (MCTS) vs STR, clustered data");
  bench::Table table({"selectivity", "str_acc", "platon_acc", "platon/str",
                      "str_build_s", "platon_build_s"});
  for (double sel : {0.0005, 0.002, 0.01}) {
    const auto train_wq = workload::GenerateRangeQueries(150, sel, q_opts);
    workload::SpatialGenOptions test_opts = q_opts;
    test_opts.seed = 43;
    const auto test_wq = workload::GenerateRangeQueries(400, sel, test_opts);
    std::vector<Rect> train_rects;
    for (const auto& q : train_wq) train_rects.push_back(ToRect(q));

    Stopwatch sw;
    RTree str;
    str.BulkLoadStr(entries);
    const double str_s = sw.ElapsedSeconds();
    sw.Reset();
    PlatonOptions popts;
    popts.mcts_min_block = 1024;
    popts.mcts_iterations = 64;
    RTree platon = PlatonPack(entries, train_rects, RTree::Options{}, popts);
    const double platon_s = sw.ElapsedSeconds();

    const double a_str = AvgAccesses(str, test_wq);
    const double a_platon = AvgAccesses(platon, test_wq);
    table.AddRow({bench::Fmt(sel, 4), bench::Fmt(a_str, 1),
                  bench::Fmt(a_platon, 1), bench::Fmt(a_platon / a_str, 3),
                  bench::Fmt(str_s, 2), bench::Fmt(platon_s, 2)});
  }
  table.Print();

  // Elongated-query workload: the case where workload-aware packing beats
  // any generic space tiling — leaf shapes should match query shapes
  // (tall-thin queries want tall-thin leaves; STR always tiles squares).
  bench::PrintHeader(
      "EXP-E elongated queries (0.002 x 0.3 boxes): shape-aware packing");
  {
    auto make_elongated = [&](int n, uint64_t seed) {
      Rng r2(seed);
      std::vector<Rect> qs(n);
      for (auto& q : qs) {
        const double cx = r2.Uniform(0.0, 1.0);
        const double cy = r2.Uniform(0.0, 1.0);
        q = {Clamp(cx - 0.001, 0.0, 1.0), Clamp(cy - 0.15, 0.0, 1.0),
             Clamp(cx + 0.001, 0.0, 1.0), Clamp(cy + 0.15, 0.0, 1.0)};
      }
      return qs;
    };
    const std::vector<Rect> train_rects = make_elongated(150, 46);
    const std::vector<Rect> test_rects = make_elongated(400, 47);
    RTree str;
    str.BulkLoadStr(entries);
    PlatonOptions popts;
    popts.mcts_min_block = 1024;
    popts.mcts_iterations = 64;
    RTree platon = PlatonPack(entries, train_rects, RTree::Options{}, popts);
    double acc_str = 0, acc_platon = 0;
    for (const auto& q : test_rects) {
      acc_str += static_cast<double>(str.RangeQuery(q).nodes_accessed);
      acc_platon += static_cast<double>(platon.RangeQuery(q).nodes_accessed);
    }
    const double n = static_cast<double>(test_rects.size());
    std::printf("accesses: str=%.1f platon=%.1f ratio=%.3f\n", acc_str / n,
                acc_platon / n, acc_platon / acc_str);
  }

  // Generalization probe: queries from a different distribution than the
  // packing was optimized for.
  bench::PrintHeader("EXP-E mismatch probe (trained on clustered queries, "
                     "tested on uniform)");
  {
    const auto train_wq = workload::GenerateRangeQueries(150, 0.002, q_opts);
    std::vector<Rect> train_rects;
    for (const auto& q : train_wq) train_rects.push_back(ToRect(q));
    workload::SpatialGenOptions uni;
    uni.distribution = workload::SpatialDistribution::kUniform;
    uni.seed = 44;
    const auto uni_wq = workload::GenerateRangeQueries(400, 0.002, uni);
    RTree str;
    str.BulkLoadStr(entries);
    PlatonOptions popts;
    popts.mcts_min_block = 1024;
    popts.mcts_iterations = 64;
    RTree platon = PlatonPack(entries, train_rects, RTree::Options{}, popts);
    std::printf("uniform-test accesses: str=%.1f platon=%.1f\n",
                AvgAccesses(str, uni_wq), AvgAccesses(platon, uni_wq));
  }
  std::printf(
      "\nShape check (paper): PLATON < STR on the workload it optimized for "
      "(platon/str <= 1, taking the learned cuts when they price cheaper and the\nspace-filling tiling otherwise); the advantage narrows or flips\noff-distribution.\n");
  return 0;
}
