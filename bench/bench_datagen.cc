// EXP-Q — training data generation (paper §3.3, open problem 4; SAM [49]):
// synthesize a privacy-compliant database from query-cardinality feedback
// only, then train an ML4DB component on the synthetic data and evaluate
// it against the private ground truth. Reports (a) cardinality fidelity of
// the synthetic distribution on held-out queries and (b) the downstream
// gap: a cardinality model trained on synthetic answers vs one trained on
// private answers, both tested on private truth.

#include "common/math_util.h"
#include "bench/bench_util.h"
#include "costest/estimators.h"
#include "datagen/workload_datagen.h"
#include "ml/metrics.h"

namespace {

using namespace ml4db;

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("datagen", &argc, argv);
  // The "private" database: 40k-row fact table with SKEWED attribute
  // values (uniform attributes would make the fit trivial); we model its
  // two attribute columns from query feedback only.
  engine::Database priv;
  workload::SchemaGenOptions sopts;
  sopts.num_dimensions = 2;
  sopts.fact_rows = 40000;
  sopts.dim_rows = 2000;
  sopts.attr_skew = 1.5;
  sopts.seed = 181;
  auto schema = workload::BuildSyntheticDb(&priv, sopts);
  ML4DB_CHECK(schema.ok());
  const int64_t domain = schema->attr_domain;
  const std::vector<int>& attrs = schema->attr_columns[0];
  ML4DB_CHECK(attrs.size() >= 2);
  const int col_a = attrs[0];
  const int col_b = attrs[1];

  // The tuning vendor sees only (query box, cardinality) pairs.
  Rng rng(182);
  auto random_box = [&](datagen::CardinalityObservation* obs,
                        engine::Query* q) {
    const double xl = rng.Uniform(0, 0.8), yl = rng.Uniform(0, 0.8);
    const double xw = rng.Uniform(0.05, 0.4), yw = rng.Uniform(0.05, 0.4);
    obs->x_lo = xl;
    obs->x_hi = std::min(1.0, xl + xw);
    obs->y_lo = yl;
    obs->y_hi = std::min(1.0, yl + yw);
    q->tables = {"fact"};
    engine::FilterPredicate fa;
    fa.table_slot = 0;
    fa.column = col_a;
    fa.op = engine::CompareOp::kBetween;
    fa.value = obs->x_lo * domain;
    fa.value2 = obs->x_hi * domain;
    engine::FilterPredicate fb = fa;
    fb.column = col_b;
    fb.value = obs->y_lo * domain;
    fb.value2 = obs->y_hi * domain;
    q->filters = {fa, fb};
  };

  std::vector<datagen::CardinalityObservation> train_obs, holdout_obs;
  std::vector<engine::Query> train_q, holdout_q;
  for (int i = 0; i < 300; ++i) {
    datagen::CardinalityObservation obs;
    engine::Query q;
    random_box(&obs, &q);
    auto r = priv.Run(q);
    ML4DB_CHECK(r.ok());
    obs.cardinality = static_cast<double>(r->count);
    if (i < 220) {
      train_obs.push_back(obs);
      train_q.push_back(q);
    } else {
      holdout_obs.push_back(obs);
      holdout_q.push_back(q);
    }
  }

  // Fit the generator from feedback only.
  datagen::WorkloadDrivenGenerator gen;
  ML4DB_CHECK(gen.Fit(train_obs, 40000).ok());

  bench::PrintHeader("EXP-Q synthetic-data fidelity (held-out query boxes)");
  {
    std::vector<double> est, truth;
    for (const auto& o : holdout_obs) {
      est.push_back(gen.EstimateCardinality(o.x_lo, o.x_hi, o.y_lo, o.y_hi));
      truth.push_back(o.cardinality);
    }
    const auto s = ml::SummarizeQErrors(est, truth);
    std::printf("fit error (mean rel.) = %.3f | q-error p50=%.2f p99=%.2f\n",
                gen.FitError(holdout_obs), s.median, s.p99);
  }

  // Downstream task: train a lightweight cardinality model on answers from
  // the SYNTHETIC distribution, test against PRIVATE truth; compare with
  // the privileged model trained on private answers directly.
  bench::PrintHeader("EXP-Q downstream: card-est trained on synthetic data");
  {
    auto vec = std::make_shared<costest::SingleTableVectorizer>(&priv, "fact");
    costest::LwGpEstimator on_private(vec, {});
    costest::LwGpEstimator on_synthetic(vec, {});
    for (size_t i = 0; i < train_q.size(); ++i) {
      on_private.Observe(train_q[i], train_obs[i].cardinality);
      const auto& o = train_obs[i];
      on_synthetic.Observe(
          train_q[i], gen.EstimateCardinality(o.x_lo, o.x_hi, o.y_lo, o.y_hi));
    }
    std::vector<double> ep, es, truth;
    for (size_t i = 0; i < holdout_q.size(); ++i) {
      ep.push_back(on_private.EstimateCardinality(holdout_q[i]));
      es.push_back(on_synthetic.EstimateCardinality(holdout_q[i]));
      truth.push_back(holdout_obs[i].cardinality);
    }
    const auto sp = ml::SummarizeQErrors(ep, truth);
    const auto ss = ml::SummarizeQErrors(es, truth);
    bench::Table table({"training data", "qerr_p50", "qerr_p90", "qerr_p99"});
    table.AddRow({"private answers (privileged)", bench::Fmt(sp.median, 2),
                  bench::Fmt(sp.p90, 2), bench::Fmt(sp.p99, 2)});
    table.AddRow({"synthetic answers (privacy-compliant)",
                  bench::Fmt(ss.median, 2), bench::Fmt(ss.p90, 2),
                  bench::Fmt(ss.p99, 2)});
    table.Print();
  }
  std::printf(
      "\nShape check (paper [49]): the synthetic distribution reproduces "
      "held-out cardinalities closely, and a model trained only on "
      "synthetic answers lands near the privileged model trained on the "
      "private data.\n");
  return 0;
}
