// EXP-F — ML-enhanced search (paper §3.2): the AI+R tree routes
// high-overlap range queries through learned per-leaf classifiers
// (skipping internal-node traversal) and falls back to the classic R-tree
// for low-overlap queries. Sweep query size (overlap level); report node
// accesses and recall of the AI path.

#include <set>

#include "bench/bench_util.h"
#include "spatial/air_tree.h"
#include "workload/spatial_gen.h"

namespace {

using namespace ml4db;
using namespace ml4db::spatial;

Rect ToRect(const workload::Rect2& r) { return {r.xlo, r.ylo, r.xhi, r.yhi}; }

}  // namespace

int main(int argc, char** argv) {
  ml4db::bench::InitBench("air_tree", &argc, argv);
  using namespace ml4db;
  // Rectangle objects (not points): leaf MBRs accumulate dead space, so
  // many leaves intersect a query without contributing results — exactly
  // the accesses the learned AI-tree skips.
  constexpr size_t kObjects = 60'000;
  workload::SpatialGenOptions opts;
  opts.distribution = workload::SpatialDistribution::kClustered;
  opts.seed = 51;
  const auto rects = workload::GenerateRects(kObjects, opts, 0.001, 0.01);
  std::vector<SpatialEntry> entries(rects.size());
  for (size_t i = 0; i < rects.size(); ++i) {
    entries[i] = {ToRect(rects[i]), i};
  }
  // Small nodes (fanout 8): the internal-node traversal the AI-tree skips
  // is a meaningful fraction of the work, as with disk-page-sized nodes.
  RTree::Options topts;
  topts.max_entries = 8;
  topts.min_entries = 2;
  RTree tree(topts);
  tree.BulkLoadStr(entries);

  bench::PrintHeader("EXP-F AI+R routed search vs classic R-tree");
  bench::Table table({"query_sel", "overlap", "rtree_acc", "air_acc",
                      "ai_recall", "routed_frac"});
  for (double sel : {0.001, 0.01, 0.05, 0.15}) {
    // One stream split into history (training) and fresh arrivals (test) —
    // clustered generators tie their hot spots to the seed, so train/test
    // must share it to model a consistent workload.
    workload::SpatialGenOptions qopts = opts;
    qopts.seed = 52;
    const auto stream = workload::GenerateRangeQueries(550, sel, qopts);
    const std::vector<workload::Rect2> train_wq(stream.begin(),
                                                stream.begin() + 250);
    const std::vector<workload::Rect2> test_wq(stream.begin() + 250,
                                               stream.end());
    std::vector<Rect> train;
    for (const auto& q : train_wq) train.push_back(ToRect(q));

    AirTree air(&tree, AirTree::Options{});
    air.Train(train);

    double acc_rtree = 0, acc_air = 0, recall = 0, routed = 0, overlap = 0;
    size_t recall_n = 0;
    for (const auto& wq : test_wq) {
      const Rect q = ToRect(wq);
      const auto classic = tree.RangeQuery(q);
      const auto routed_result = air.RangeQuery(q);
      acc_rtree += static_cast<double>(classic.nodes_accessed);
      acc_air += static_cast<double>(routed_result.nodes_accessed);
      overlap += static_cast<double>(classic.nodes_accessed);
      const auto predicted = air.PredictLeaves(q);
      if (predicted.size() >= 4) routed += 1.0;
      if (!classic.results.empty()) {
        const std::set<uint64_t> truth(classic.results.begin(),
                                       classic.results.end());
        size_t hit = 0;
        for (uint64_t id : routed_result.results) hit += truth.count(id);
        recall += static_cast<double>(hit) / truth.size();
        ++recall_n;
      }
    }
    const double n = static_cast<double>(test_wq.size());
    table.AddRow({bench::Fmt(sel, 3), bench::Fmt(overlap / n, 1),
                  bench::Fmt(acc_rtree / n, 1), bench::Fmt(acc_air / n, 1),
                  bench::Fmt(recall_n ? recall / recall_n : 1.0, 3),
                  bench::Fmt(routed / n, 2)});
  }
  table.Print();
  std::printf(
      "\nShape check (paper): on high-overlap (large) queries the AI-routed "
      "path needs fewer accesses than full traversal while recall stays "
      "high; low-overlap queries fall back to the R-tree (routed_frac "
      "small, identical accesses).\n");
  return 0;
}
