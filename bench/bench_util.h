// Shared helpers for the experiment benchmark binaries: standard database /
// workload setup, aligned-column table printing, and machine-readable
// export. Each bench binary regenerates one table/figure of the paper (see
// DESIGN.md experiment index), prints it in a paper-shaped layout, and —
// when invoked with `--json [path]` / `--csv [path]` — also writes the
// BENCH_<name>.json / .csv export (schema in DESIGN.md §6): run metadata,
// a metrics-registry snapshot, the typed event log, and every table the
// run printed.
//
// Usage in a bench main:
//   int main(int argc, char** argv) {
//     bench::InitBench("qo_drift", &argc, argv);  // strips --json/--csv
//     ...
//     table.Print();  // recorded for export automatically
//   }
// The export file is written at process exit (atexit).

#ifndef ML4DB_BENCH_BENCH_UTIL_H_
#define ML4DB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "workload/query_gen.h"
#include "workload/schema_gen.h"

namespace ml4db {
namespace bench {

namespace internal {

/// Process-wide export state, live between InitBench and process exit.
struct BenchState {
  bool active = false;
  std::string name;
  std::string json_path;  ///< empty = no JSON export requested
  std::string csv_path;   ///< empty = no CSV export requested
  std::string section;    ///< last PrintHeader title (labels tables)
  size_t untitled_tables = 0;
  std::unique_ptr<obs::BenchExporter> exporter;
};

inline BenchState& State() {
  static BenchState state;
  return state;
}

inline void FinishBench() {
  BenchState& s = State();
  if (!s.active || s.exporter == nullptr) return;
  s.active = false;
  if (!s.json_path.empty()) {
    const Status st = s.exporter->WriteJson(s.json_path);
    if (st.ok()) {
      std::printf("\n[bench] wrote %s\n", s.json_path.c_str());
    } else {
      std::fprintf(stderr, "[bench] JSON export failed: %s\n",
                   st.ToString().c_str());
    }
  }
  if (!s.csv_path.empty()) {
    const Status st = s.exporter->WriteCsv(s.csv_path);
    if (st.ok()) {
      std::printf("[bench] wrote %s\n", s.csv_path.c_str());
    } else {
      std::fprintf(stderr, "[bench] CSV export failed: %s\n",
                   st.ToString().c_str());
    }
  }
}

}  // namespace internal

/// Initializes bench export for this process. Parses and REMOVES
/// `--json [path]` and `--csv [path]` from argv (so later flag parsers,
/// e.g. google-benchmark's, never see them); a missing path defaults to
/// BENCH_<name>.json / BENCH_<name>.csv. Safe to call with argc == nullptr
/// when the binary takes no arguments.
inline void InitBench(const std::string& name, int* argc = nullptr,
                      char** argv = nullptr) {
  internal::BenchState& s = internal::State();
  s.active = true;
  s.name = name;
  std::vector<std::string> args;
  if (argc != nullptr && argv != nullptr) {
    for (int i = 0; i < *argc; ++i) args.emplace_back(argv[i]);
    int w = 0;
    for (int i = 0; i < *argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" || arg == "--csv") {
        std::string path = "BENCH_" + name + (arg == "--json" ? ".json" : ".csv");
        if (i + 1 < *argc && argv[i + 1][0] != '-') path = argv[++i];
        (arg == "--json" ? s.json_path : s.csv_path) = path;
        continue;
      }
      argv[w++] = argv[i];
    }
    *argc = w;
    argv[w] = nullptr;
  }
  s.exporter = std::make_unique<obs::BenchExporter>(name, std::move(args));
  // Every export carries the pool size (ML4DB_THREADS), so speedup claims
  // in bench JSON are self-describing: compare runs by this gauge.
  obs::GetGauge("ml4db.bench.threads")
      ->Set(static_cast<double>(common::ThreadPool::Global().size()));
  std::atexit(internal::FinishBench);
}

/// Records a query trace into the export (no-op unless --json was given).
inline void RecordTrace(const obs::QueryTrace& trace) {
  internal::BenchState& s = internal::State();
  if (s.active && s.exporter != nullptr) s.exporter->AddTrace(trace);
}

/// Stamps a run-configuration key into the export's top-level "config"
/// object (e.g. which --index-backend served the run), so downstream
/// tooling can compare JSONs without re-parsing argv.
inline void SetBenchConfig(const std::string& key, const std::string& value) {
  internal::BenchState& s = internal::State();
  if (s.active && s.exporter != nullptr) s.exporter->SetConfig(key, value);
}

/// Prints a separator + centered title; the title also labels the tables
/// printed below it in the machine-readable export.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  internal::State().section = title;
}

/// Simple aligned table printer. Printing also records the table into the
/// bench export when InitBench was called.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    ML4DB_DCHECK(cells.size() == columns_.size());
    rows_.push_back(std::move(cells));
  }

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// RFC 4180 CSV rendering (header + rows), used by the exporter.
  std::string ToCsv() const {
    std::string out = obs::CsvLine(columns_);
    for (const auto& row : rows_) out += obs::CsvLine(row);
    return out;
  }

  void Print() const {
    std::vector<size_t> width(columns_.size(), 0);
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string dash;
    for (size_t c = 0; c < columns_.size(); ++c) {
      dash.assign(width[c], '-');
      std::printf("%s  ", dash.c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);

    internal::BenchState& s = internal::State();
    if (s.active && s.exporter != nullptr) {
      obs::ExportTable t;
      t.title = s.section.empty()
                    ? "table_" + std::to_string(++s.untitled_tables)
                    : s.section;
      t.columns = columns_;
      t.rows = rows_;
      s.exporter->AddTable(std::move(t));
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

/// Database options modeling the production reality that motivates learned
/// query optimization: the planner's cost constants are the textbook
/// defaults, but the "hardware" (true latency model) disagrees — random
/// I/O is pricier and hashing cheaper than the model believes, so the
/// expert systematically over-uses index nested-loop joins. Feedback-driven
/// components (Bao/AutoSteer/NEO) can exploit the gap; ParamTree closes it.
inline engine::DatabaseOptions MiscalibratedHardware() {
  engine::DatabaseOptions dopts;
  dopts.true_params.rand_page_cost = 12.0;   // model believes 4.0
  dopts.true_params.hash_build_cost = 0.004; // model believes 0.02
  dopts.true_params.hash_probe_cost = 0.002; // model believes 0.005
  return dopts;
}

/// A standard star-schema benchmark database + generator pair. The schema
/// lives on the heap so a BenchDb can be moved (e.g. into a vector)
/// without invalidating the generator's pointer into it.
struct BenchDb {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<workload::SyntheticSchema> schema_ptr;
  std::unique_ptr<workload::QueryGenerator> gen;

  const workload::SyntheticSchema& schema() const { return *schema_ptr; }
};

inline BenchDb MakeBenchDb(uint64_t seed, size_t fact_rows = 40000,
                           size_t dim_rows = 2000, int dims = 4,
                           engine::DatabaseOptions dopts = {}) {
  BenchDb out;
  out.db = std::make_unique<engine::Database>(dopts);
  workload::SchemaGenOptions opts;
  opts.num_dimensions = dims;
  opts.fact_rows = fact_rows;
  opts.dim_rows = dim_rows;
  opts.seed = seed;
  auto schema = workload::BuildSyntheticDb(out.db.get(), opts);
  ML4DB_CHECK_MSG(schema.ok(), "bench db build failed");
  out.schema_ptr =
      std::make_unique<workload::SyntheticSchema>(std::move(*schema));
  workload::QueryGenOptions qopts;
  qopts.min_tables = 2;
  qopts.max_tables = 4;
  qopts.seed = seed ^ 0xbe7cULL;
  out.gen =
      std::make_unique<workload::QueryGenerator>(out.schema_ptr.get(), qopts);
  return out;
}

}  // namespace bench
}  // namespace ml4db

#endif  // ML4DB_BENCH_BENCH_UTIL_H_
