// Shared helpers for the experiment benchmark binaries: standard database /
// workload setup and aligned-column table printing. Each bench binary
// regenerates one table/figure of the paper (see DESIGN.md experiment
// index) and prints it in a paper-shaped layout.

#ifndef ML4DB_BENCH_BENCH_UTIL_H_
#define ML4DB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "workload/query_gen.h"
#include "workload/schema_gen.h"

namespace ml4db {
namespace bench {

/// Prints a separator + centered title.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> width(columns_.size(), 0);
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    std::string dash;
    for (size_t c = 0; c < columns_.size(); ++c) {
      dash.assign(width[c], '-');
      std::printf("%s  ", dash.c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

/// Database options modeling the production reality that motivates learned
/// query optimization: the planner's cost constants are the textbook
/// defaults, but the "hardware" (true latency model) disagrees — random
/// I/O is pricier and hashing cheaper than the model believes, so the
/// expert systematically over-uses index nested-loop joins. Feedback-driven
/// components (Bao/AutoSteer/NEO) can exploit the gap; ParamTree closes it.
inline engine::DatabaseOptions MiscalibratedHardware() {
  engine::DatabaseOptions dopts;
  dopts.true_params.rand_page_cost = 12.0;   // model believes 4.0
  dopts.true_params.hash_build_cost = 0.004; // model believes 0.02
  dopts.true_params.hash_probe_cost = 0.002; // model believes 0.005
  return dopts;
}

/// A standard star-schema benchmark database + generator pair. The schema
/// lives on the heap so a BenchDb can be moved (e.g. into a vector)
/// without invalidating the generator's pointer into it.
struct BenchDb {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<workload::SyntheticSchema> schema_ptr;
  std::unique_ptr<workload::QueryGenerator> gen;

  const workload::SyntheticSchema& schema() const { return *schema_ptr; }
};

inline BenchDb MakeBenchDb(uint64_t seed, size_t fact_rows = 40000,
                           size_t dim_rows = 2000, int dims = 4,
                           engine::DatabaseOptions dopts = {}) {
  BenchDb out;
  out.db = std::make_unique<engine::Database>(dopts);
  workload::SchemaGenOptions opts;
  opts.num_dimensions = dims;
  opts.fact_rows = fact_rows;
  opts.dim_rows = dim_rows;
  opts.seed = seed;
  auto schema = workload::BuildSyntheticDb(out.db.get(), opts);
  ML4DB_CHECK_MSG(schema.ok(), "bench db build failed");
  out.schema_ptr =
      std::make_unique<workload::SyntheticSchema>(std::move(*schema));
  workload::QueryGenOptions qopts;
  qopts.min_tables = 2;
  qopts.max_tables = 4;
  qopts.seed = seed ^ 0xbe7cULL;
  out.gen =
      std::make_unique<workload::QueryGenerator>(out.schema_ptr.get(), qopts);
  return out;
}

}  // namespace bench
}  // namespace ml4db

#endif  // ML4DB_BENCH_BENCH_UTIL_H_
