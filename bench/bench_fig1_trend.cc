// FIG1 — regenerates Figure 1 of the paper: the SIGMOD/VLDB publication
// trend for machine learning on data indexes & query optimizers, split by
// paradigm (replacement vs ML-enhanced), from the embedded survey corpus.

#include <cstdio>

#include "bench/bench_util.h"
#include "survey/corpus.h"

int main(int argc, char** argv) {
  ml4db::bench::InitBench("fig1_trend", &argc, argv);
  using namespace ml4db;
  bench::PrintHeader("FIG1: publication trend (replacement vs ML-enhanced)");
  std::printf("%s\n", survey::RenderTrendTable().c_str());

  // The observation the paper draws from the figure, checked numerically.
  for (auto component :
       {survey::Component::kIndex, survey::Component::kQueryOptimizer}) {
    const auto trend = survey::PublicationTrend(component);
    int early_repl = 0, early_enh = 0, late_repl = 0, late_enh = 0;
    for (const auto& cell : trend) {
      if (cell.year <= 2020) {
        early_repl += cell.replacement;
        early_enh += cell.enhanced;
      } else {
        late_repl += cell.replacement;
        late_enh += cell.enhanced;
      }
    }
    std::printf(
        "%s: 2018-2020 repl=%d enh=%d | 2021-2023 repl=%d enh=%d -> "
        "shift toward ML-enhanced: %s\n",
        survey::ComponentName(component), early_repl, early_enh, late_repl,
        late_enh, (late_enh > late_repl && early_repl > early_enh) ? "YES" : "NO");
  }

  bench::PrintHeader("surveyed corpus");
  bench::Table table({"year", "venue", "component", "paradigm", "system"});
  for (const auto& pub : survey::Corpus()) {
    table.AddRow({std::to_string(pub.year), pub.venue,
                  survey::ComponentName(pub.component),
                  survey::ParadigmName(pub.paradigm), pub.name});
  }
  table.Print();
  return 0;
}
