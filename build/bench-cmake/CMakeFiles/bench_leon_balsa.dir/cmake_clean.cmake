file(REMOVE_RECURSE
  "../bench/bench_leon_balsa"
  "../bench/bench_leon_balsa.pdb"
  "CMakeFiles/bench_leon_balsa.dir/bench_leon_balsa.cc.o"
  "CMakeFiles/bench_leon_balsa.dir/bench_leon_balsa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leon_balsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
