# Empty compiler generated dependencies file for bench_leon_balsa.
# This may be replaced when dependencies are built.
