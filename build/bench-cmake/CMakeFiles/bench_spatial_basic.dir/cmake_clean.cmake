file(REMOVE_RECURSE
  "../bench/bench_spatial_basic"
  "../bench/bench_spatial_basic.pdb"
  "CMakeFiles/bench_spatial_basic.dir/bench_spatial_basic.cc.o"
  "CMakeFiles/bench_spatial_basic.dir/bench_spatial_basic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
