# Empty dependencies file for bench_spatial_basic.
# This may be replaced when dependencies are built.
