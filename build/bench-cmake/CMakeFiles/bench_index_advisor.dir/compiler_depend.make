# Empty compiler generated dependencies file for bench_index_advisor.
# This may be replaced when dependencies are built.
