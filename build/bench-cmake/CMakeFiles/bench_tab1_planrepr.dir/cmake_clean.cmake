file(REMOVE_RECURSE
  "../bench/bench_tab1_planrepr"
  "../bench/bench_tab1_planrepr.pdb"
  "CMakeFiles/bench_tab1_planrepr.dir/bench_tab1_planrepr.cc.o"
  "CMakeFiles/bench_tab1_planrepr.dir/bench_tab1_planrepr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_planrepr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
