# Empty dependencies file for bench_tab1_planrepr.
# This may be replaced when dependencies are built.
