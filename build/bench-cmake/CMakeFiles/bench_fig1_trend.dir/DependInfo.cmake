
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_trend.cc" "bench-cmake/CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cc.o" "gcc" "bench-cmake/CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/survey/CMakeFiles/ml4db_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ml4db_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ml4db_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
