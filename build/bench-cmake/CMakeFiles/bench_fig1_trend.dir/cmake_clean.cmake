file(REMOVE_RECURSE
  "../bench/bench_fig1_trend"
  "../bench/bench_fig1_trend.pdb"
  "CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cc.o"
  "CMakeFiles/bench_fig1_trend.dir/bench_fig1_trend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
