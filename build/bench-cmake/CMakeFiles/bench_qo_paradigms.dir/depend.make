# Empty dependencies file for bench_qo_paradigms.
# This may be replaced when dependencies are built.
