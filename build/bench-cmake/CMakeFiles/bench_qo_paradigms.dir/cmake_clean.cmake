file(REMOVE_RECURSE
  "../bench/bench_qo_paradigms"
  "../bench/bench_qo_paradigms.pdb"
  "CMakeFiles/bench_qo_paradigms.dir/bench_qo_paradigms.cc.o"
  "CMakeFiles/bench_qo_paradigms.dir/bench_qo_paradigms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qo_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
