file(REMOVE_RECURSE
  "../bench/bench_model_efficiency"
  "../bench/bench_model_efficiency.pdb"
  "CMakeFiles/bench_model_efficiency.dir/bench_model_efficiency.cc.o"
  "CMakeFiles/bench_model_efficiency.dir/bench_model_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
