# Empty compiler generated dependencies file for bench_model_efficiency.
# This may be replaced when dependencies are built.
