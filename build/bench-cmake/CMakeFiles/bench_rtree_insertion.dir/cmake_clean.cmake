file(REMOVE_RECURSE
  "../bench/bench_rtree_insertion"
  "../bench/bench_rtree_insertion.pdb"
  "CMakeFiles/bench_rtree_insertion.dir/bench_rtree_insertion.cc.o"
  "CMakeFiles/bench_rtree_insertion.dir/bench_rtree_insertion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtree_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
