# Empty dependencies file for bench_rtree_insertion.
# This may be replaced when dependencies are built.
