file(REMOVE_RECURSE
  "../bench/bench_rtree_packing"
  "../bench/bench_rtree_packing.pdb"
  "CMakeFiles/bench_rtree_packing.dir/bench_rtree_packing.cc.o"
  "CMakeFiles/bench_rtree_packing.dir/bench_rtree_packing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtree_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
