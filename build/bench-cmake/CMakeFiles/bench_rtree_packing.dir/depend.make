# Empty dependencies file for bench_rtree_packing.
# This may be replaced when dependencies are built.
