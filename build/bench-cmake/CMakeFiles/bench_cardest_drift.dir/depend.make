# Empty dependencies file for bench_cardest_drift.
# This may be replaced when dependencies are built.
