file(REMOVE_RECURSE
  "../bench/bench_cardest_drift"
  "../bench/bench_cardest_drift.pdb"
  "CMakeFiles/bench_cardest_drift.dir/bench_cardest_drift.cc.o"
  "CMakeFiles/bench_cardest_drift.dir/bench_cardest_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cardest_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
