file(REMOVE_RECURSE
  "../bench/bench_paramtree"
  "../bench/bench_paramtree.pdb"
  "CMakeFiles/bench_paramtree.dir/bench_paramtree.cc.o"
  "CMakeFiles/bench_paramtree.dir/bench_paramtree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paramtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
