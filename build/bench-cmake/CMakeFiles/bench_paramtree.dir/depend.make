# Empty dependencies file for bench_paramtree.
# This may be replaced when dependencies are built.
