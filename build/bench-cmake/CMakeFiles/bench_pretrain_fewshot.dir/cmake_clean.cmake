file(REMOVE_RECURSE
  "../bench/bench_pretrain_fewshot"
  "../bench/bench_pretrain_fewshot.pdb"
  "CMakeFiles/bench_pretrain_fewshot.dir/bench_pretrain_fewshot.cc.o"
  "CMakeFiles/bench_pretrain_fewshot.dir/bench_pretrain_fewshot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pretrain_fewshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
