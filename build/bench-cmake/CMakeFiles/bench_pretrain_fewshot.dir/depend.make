# Empty dependencies file for bench_pretrain_fewshot.
# This may be replaced when dependencies are built.
