# Empty dependencies file for bench_index_static.
# This may be replaced when dependencies are built.
