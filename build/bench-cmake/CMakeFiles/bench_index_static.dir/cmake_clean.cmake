file(REMOVE_RECURSE
  "../bench/bench_index_static"
  "../bench/bench_index_static.pdb"
  "CMakeFiles/bench_index_static.dir/bench_index_static.cc.o"
  "CMakeFiles/bench_index_static.dir/bench_index_static.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
