# Empty dependencies file for bench_autosteer.
# This may be replaced when dependencies are built.
