file(REMOVE_RECURSE
  "../bench/bench_autosteer"
  "../bench/bench_autosteer.pdb"
  "CMakeFiles/bench_autosteer.dir/bench_autosteer.cc.o"
  "CMakeFiles/bench_autosteer.dir/bench_autosteer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autosteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
