file(REMOVE_RECURSE
  "../bench/bench_air_tree"
  "../bench/bench_air_tree.pdb"
  "CMakeFiles/bench_air_tree.dir/bench_air_tree.cc.o"
  "CMakeFiles/bench_air_tree.dir/bench_air_tree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_air_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
