# Empty compiler generated dependencies file for bench_air_tree.
# This may be replaced when dependencies are built.
