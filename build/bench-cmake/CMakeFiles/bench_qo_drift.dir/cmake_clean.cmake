file(REMOVE_RECURSE
  "../bench/bench_qo_drift"
  "../bench/bench_qo_drift.pdb"
  "CMakeFiles/bench_qo_drift.dir/bench_qo_drift.cc.o"
  "CMakeFiles/bench_qo_drift.dir/bench_qo_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qo_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
