# Empty compiler generated dependencies file for bench_qo_drift.
# This may be replaced when dependencies are built.
