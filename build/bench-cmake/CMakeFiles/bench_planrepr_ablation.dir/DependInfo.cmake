
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_planrepr_ablation.cc" "bench-cmake/CMakeFiles/bench_planrepr_ablation.dir/bench_planrepr_ablation.cc.o" "gcc" "bench-cmake/CMakeFiles/bench_planrepr_ablation.dir/bench_planrepr_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costest/CMakeFiles/ml4db_costest.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ml4db_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/planrepr/CMakeFiles/ml4db_planrepr.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ml4db_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml4db_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/drift/CMakeFiles/ml4db_drift.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
