file(REMOVE_RECURSE
  "../bench/bench_planrepr_ablation"
  "../bench/bench_planrepr_ablation.pdb"
  "CMakeFiles/bench_planrepr_ablation.dir/bench_planrepr_ablation.cc.o"
  "CMakeFiles/bench_planrepr_ablation.dir/bench_planrepr_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planrepr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
