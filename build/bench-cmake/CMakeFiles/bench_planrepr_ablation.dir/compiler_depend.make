# Empty compiler generated dependencies file for bench_planrepr_ablation.
# This may be replaced when dependencies are built.
