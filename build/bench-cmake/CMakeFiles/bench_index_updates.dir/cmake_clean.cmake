file(REMOVE_RECURSE
  "../bench/bench_index_updates"
  "../bench/bench_index_updates.pdb"
  "CMakeFiles/bench_index_updates.dir/bench_index_updates.cc.o"
  "CMakeFiles/bench_index_updates.dir/bench_index_updates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
