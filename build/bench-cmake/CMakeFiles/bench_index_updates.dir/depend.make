# Empty dependencies file for bench_index_updates.
# This may be replaced when dependencies are built.
