file(REMOVE_RECURSE
  "../bench/bench_datagen"
  "../bench/bench_datagen.pdb"
  "CMakeFiles/bench_datagen.dir/bench_datagen.cc.o"
  "CMakeFiles/bench_datagen.dir/bench_datagen.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
