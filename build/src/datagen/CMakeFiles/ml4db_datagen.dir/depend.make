# Empty dependencies file for ml4db_datagen.
# This may be replaced when dependencies are built.
