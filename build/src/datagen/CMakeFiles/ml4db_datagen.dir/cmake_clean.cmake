file(REMOVE_RECURSE
  "CMakeFiles/ml4db_datagen.dir/workload_datagen.cc.o"
  "CMakeFiles/ml4db_datagen.dir/workload_datagen.cc.o.d"
  "libml4db_datagen.a"
  "libml4db_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
