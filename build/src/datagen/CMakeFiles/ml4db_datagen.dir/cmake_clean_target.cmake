file(REMOVE_RECURSE
  "libml4db_datagen.a"
)
