file(REMOVE_RECURSE
  "libml4db_optimizer.a"
)
