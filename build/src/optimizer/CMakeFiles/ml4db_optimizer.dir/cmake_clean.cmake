file(REMOVE_RECURSE
  "CMakeFiles/ml4db_optimizer.dir/autosteer.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/autosteer.cc.o.d"
  "CMakeFiles/ml4db_optimizer.dir/bao.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/bao.cc.o.d"
  "CMakeFiles/ml4db_optimizer.dir/harness.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/harness.cc.o.d"
  "CMakeFiles/ml4db_optimizer.dir/leon.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/leon.cc.o.d"
  "CMakeFiles/ml4db_optimizer.dir/paramtree.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/paramtree.cc.o.d"
  "CMakeFiles/ml4db_optimizer.dir/value_search.cc.o"
  "CMakeFiles/ml4db_optimizer.dir/value_search.cc.o.d"
  "libml4db_optimizer.a"
  "libml4db_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
