# Empty dependencies file for ml4db_optimizer.
# This may be replaced when dependencies are built.
