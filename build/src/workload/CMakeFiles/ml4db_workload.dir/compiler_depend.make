# Empty compiler generated dependencies file for ml4db_workload.
# This may be replaced when dependencies are built.
