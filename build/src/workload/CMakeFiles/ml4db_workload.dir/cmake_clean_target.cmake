file(REMOVE_RECURSE
  "libml4db_workload.a"
)
