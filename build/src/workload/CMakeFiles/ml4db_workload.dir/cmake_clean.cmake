file(REMOVE_RECURSE
  "CMakeFiles/ml4db_workload.dir/data_gen.cc.o"
  "CMakeFiles/ml4db_workload.dir/data_gen.cc.o.d"
  "CMakeFiles/ml4db_workload.dir/query_gen.cc.o"
  "CMakeFiles/ml4db_workload.dir/query_gen.cc.o.d"
  "CMakeFiles/ml4db_workload.dir/schema_gen.cc.o"
  "CMakeFiles/ml4db_workload.dir/schema_gen.cc.o.d"
  "CMakeFiles/ml4db_workload.dir/spatial_gen.cc.o"
  "CMakeFiles/ml4db_workload.dir/spatial_gen.cc.o.d"
  "libml4db_workload.a"
  "libml4db_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
