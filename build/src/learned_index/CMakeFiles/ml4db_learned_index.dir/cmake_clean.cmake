file(REMOVE_RECURSE
  "CMakeFiles/ml4db_learned_index.dir/alex_index.cc.o"
  "CMakeFiles/ml4db_learned_index.dir/alex_index.cc.o.d"
  "CMakeFiles/ml4db_learned_index.dir/btree_index.cc.o"
  "CMakeFiles/ml4db_learned_index.dir/btree_index.cc.o.d"
  "CMakeFiles/ml4db_learned_index.dir/pgm_index.cc.o"
  "CMakeFiles/ml4db_learned_index.dir/pgm_index.cc.o.d"
  "CMakeFiles/ml4db_learned_index.dir/radix_spline.cc.o"
  "CMakeFiles/ml4db_learned_index.dir/radix_spline.cc.o.d"
  "CMakeFiles/ml4db_learned_index.dir/rmi_index.cc.o"
  "CMakeFiles/ml4db_learned_index.dir/rmi_index.cc.o.d"
  "libml4db_learned_index.a"
  "libml4db_learned_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_learned_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
