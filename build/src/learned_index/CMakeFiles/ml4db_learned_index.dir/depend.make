# Empty dependencies file for ml4db_learned_index.
# This may be replaced when dependencies are built.
