
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learned_index/alex_index.cc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/alex_index.cc.o" "gcc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/alex_index.cc.o.d"
  "/root/repo/src/learned_index/btree_index.cc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/btree_index.cc.o" "gcc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/btree_index.cc.o.d"
  "/root/repo/src/learned_index/pgm_index.cc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/pgm_index.cc.o" "gcc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/pgm_index.cc.o.d"
  "/root/repo/src/learned_index/radix_spline.cc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/radix_spline.cc.o" "gcc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/radix_spline.cc.o.d"
  "/root/repo/src/learned_index/rmi_index.cc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/rmi_index.cc.o" "gcc" "src/learned_index/CMakeFiles/ml4db_learned_index.dir/rmi_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
