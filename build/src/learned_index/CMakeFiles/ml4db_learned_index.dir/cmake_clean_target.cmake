file(REMOVE_RECURSE
  "libml4db_learned_index.a"
)
