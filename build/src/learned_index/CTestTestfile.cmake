# CMake generated Testfile for 
# Source directory: /root/repo/src/learned_index
# Build directory: /root/repo/build/src/learned_index
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
