file(REMOVE_RECURSE
  "libml4db_costest.a"
)
