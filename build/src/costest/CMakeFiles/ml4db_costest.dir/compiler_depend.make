# Empty compiler generated dependencies file for ml4db_costest.
# This may be replaced when dependencies are built.
