file(REMOVE_RECURSE
  "CMakeFiles/ml4db_costest.dir/collector.cc.o"
  "CMakeFiles/ml4db_costest.dir/collector.cc.o.d"
  "CMakeFiles/ml4db_costest.dir/estimators.cc.o"
  "CMakeFiles/ml4db_costest.dir/estimators.cc.o.d"
  "libml4db_costest.a"
  "libml4db_costest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_costest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
