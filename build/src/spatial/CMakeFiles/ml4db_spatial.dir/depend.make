# Empty dependencies file for ml4db_spatial.
# This may be replaced when dependencies are built.
