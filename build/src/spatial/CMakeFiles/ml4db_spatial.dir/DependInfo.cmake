
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/air_tree.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/air_tree.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/air_tree.cc.o.d"
  "/root/repo/src/spatial/lisa_index.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/lisa_index.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/lisa_index.cc.o.d"
  "/root/repo/src/spatial/platon.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/platon.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/platon.cc.o.d"
  "/root/repo/src/spatial/rlr_tree.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rlr_tree.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rlr_tree.cc.o.d"
  "/root/repo/src/spatial/rtree.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rtree.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rtree.cc.o.d"
  "/root/repo/src/spatial/rw_tree.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rw_tree.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/rw_tree.cc.o.d"
  "/root/repo/src/spatial/zm_index.cc" "src/spatial/CMakeFiles/ml4db_spatial.dir/zm_index.cc.o" "gcc" "src/spatial/CMakeFiles/ml4db_spatial.dir/zm_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml4db_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/learned_index/CMakeFiles/ml4db_learned_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
