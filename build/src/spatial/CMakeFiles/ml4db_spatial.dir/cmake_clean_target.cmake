file(REMOVE_RECURSE
  "libml4db_spatial.a"
)
