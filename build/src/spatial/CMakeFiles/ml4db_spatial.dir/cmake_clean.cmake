file(REMOVE_RECURSE
  "CMakeFiles/ml4db_spatial.dir/air_tree.cc.o"
  "CMakeFiles/ml4db_spatial.dir/air_tree.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/lisa_index.cc.o"
  "CMakeFiles/ml4db_spatial.dir/lisa_index.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/platon.cc.o"
  "CMakeFiles/ml4db_spatial.dir/platon.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/rlr_tree.cc.o"
  "CMakeFiles/ml4db_spatial.dir/rlr_tree.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/rtree.cc.o"
  "CMakeFiles/ml4db_spatial.dir/rtree.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/rw_tree.cc.o"
  "CMakeFiles/ml4db_spatial.dir/rw_tree.cc.o.d"
  "CMakeFiles/ml4db_spatial.dir/zm_index.cc.o"
  "CMakeFiles/ml4db_spatial.dir/zm_index.cc.o.d"
  "libml4db_spatial.a"
  "libml4db_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
