file(REMOVE_RECURSE
  "CMakeFiles/ml4db_ml.dir/bayes_linear.cc.o"
  "CMakeFiles/ml4db_ml.dir/bayes_linear.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/matrix.cc.o"
  "CMakeFiles/ml4db_ml.dir/matrix.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/metrics.cc.o"
  "CMakeFiles/ml4db_ml.dir/metrics.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/nn.cc.o"
  "CMakeFiles/ml4db_ml.dir/nn.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/qlearning.cc.o"
  "CMakeFiles/ml4db_ml.dir/qlearning.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/random_feature_gp.cc.o"
  "CMakeFiles/ml4db_ml.dir/random_feature_gp.cc.o.d"
  "CMakeFiles/ml4db_ml.dir/tree_models.cc.o"
  "CMakeFiles/ml4db_ml.dir/tree_models.cc.o.d"
  "libml4db_ml.a"
  "libml4db_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
