
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bayes_linear.cc" "src/ml/CMakeFiles/ml4db_ml.dir/bayes_linear.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/bayes_linear.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/ml4db_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/ml4db_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/nn.cc" "src/ml/CMakeFiles/ml4db_ml.dir/nn.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/nn.cc.o.d"
  "/root/repo/src/ml/qlearning.cc" "src/ml/CMakeFiles/ml4db_ml.dir/qlearning.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/qlearning.cc.o.d"
  "/root/repo/src/ml/random_feature_gp.cc" "src/ml/CMakeFiles/ml4db_ml.dir/random_feature_gp.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/random_feature_gp.cc.o.d"
  "/root/repo/src/ml/tree_models.cc" "src/ml/CMakeFiles/ml4db_ml.dir/tree_models.cc.o" "gcc" "src/ml/CMakeFiles/ml4db_ml.dir/tree_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
