# Empty dependencies file for ml4db_ml.
# This may be replaced when dependencies are built.
