file(REMOVE_RECURSE
  "libml4db_ml.a"
)
