file(REMOVE_RECURSE
  "libml4db_engine.a"
)
