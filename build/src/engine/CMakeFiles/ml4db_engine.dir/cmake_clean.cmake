file(REMOVE_RECURSE
  "CMakeFiles/ml4db_engine.dir/card_estimator.cc.o"
  "CMakeFiles/ml4db_engine.dir/card_estimator.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/cost_model.cc.o"
  "CMakeFiles/ml4db_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/database.cc.o"
  "CMakeFiles/ml4db_engine.dir/database.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/dp_optimizer.cc.o"
  "CMakeFiles/ml4db_engine.dir/dp_optimizer.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/executor.cc.o"
  "CMakeFiles/ml4db_engine.dir/executor.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/hints.cc.o"
  "CMakeFiles/ml4db_engine.dir/hints.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/plan.cc.o"
  "CMakeFiles/ml4db_engine.dir/plan.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/query.cc.o"
  "CMakeFiles/ml4db_engine.dir/query.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/stats.cc.o"
  "CMakeFiles/ml4db_engine.dir/stats.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/table.cc.o"
  "CMakeFiles/ml4db_engine.dir/table.cc.o.d"
  "CMakeFiles/ml4db_engine.dir/types.cc.o"
  "CMakeFiles/ml4db_engine.dir/types.cc.o.d"
  "libml4db_engine.a"
  "libml4db_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
