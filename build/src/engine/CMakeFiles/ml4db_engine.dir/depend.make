# Empty dependencies file for ml4db_engine.
# This may be replaced when dependencies are built.
