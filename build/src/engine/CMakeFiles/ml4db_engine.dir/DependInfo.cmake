
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/card_estimator.cc" "src/engine/CMakeFiles/ml4db_engine.dir/card_estimator.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/card_estimator.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/ml4db_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/ml4db_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/dp_optimizer.cc" "src/engine/CMakeFiles/ml4db_engine.dir/dp_optimizer.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/dp_optimizer.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/ml4db_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/hints.cc" "src/engine/CMakeFiles/ml4db_engine.dir/hints.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/hints.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/ml4db_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/query.cc" "src/engine/CMakeFiles/ml4db_engine.dir/query.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/query.cc.o.d"
  "/root/repo/src/engine/stats.cc" "src/engine/CMakeFiles/ml4db_engine.dir/stats.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/stats.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/ml4db_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/types.cc" "src/engine/CMakeFiles/ml4db_engine.dir/types.cc.o" "gcc" "src/engine/CMakeFiles/ml4db_engine.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
