file(REMOVE_RECURSE
  "CMakeFiles/ml4db_pretrain.dir/pretrained_model.cc.o"
  "CMakeFiles/ml4db_pretrain.dir/pretrained_model.cc.o.d"
  "libml4db_pretrain.a"
  "libml4db_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
