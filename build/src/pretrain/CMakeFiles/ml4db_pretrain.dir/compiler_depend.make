# Empty compiler generated dependencies file for ml4db_pretrain.
# This may be replaced when dependencies are built.
