file(REMOVE_RECURSE
  "libml4db_pretrain.a"
)
