file(REMOVE_RECURSE
  "CMakeFiles/ml4db_advisor.dir/index_advisor.cc.o"
  "CMakeFiles/ml4db_advisor.dir/index_advisor.cc.o.d"
  "libml4db_advisor.a"
  "libml4db_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
