file(REMOVE_RECURSE
  "libml4db_advisor.a"
)
