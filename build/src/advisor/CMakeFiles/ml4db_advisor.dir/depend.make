# Empty dependencies file for ml4db_advisor.
# This may be replaced when dependencies are built.
