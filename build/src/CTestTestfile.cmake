# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("ml")
subdirs("engine")
subdirs("workload")
subdirs("learned_index")
subdirs("spatial")
subdirs("planrepr")
subdirs("costest")
subdirs("optimizer")
subdirs("drift")
subdirs("pretrain")
subdirs("survey")
subdirs("advisor")
subdirs("datagen")
