# Empty dependencies file for ml4db_common.
# This may be replaced when dependencies are built.
