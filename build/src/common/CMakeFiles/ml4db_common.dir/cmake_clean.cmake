file(REMOVE_RECURSE
  "CMakeFiles/ml4db_common.dir/math_util.cc.o"
  "CMakeFiles/ml4db_common.dir/math_util.cc.o.d"
  "CMakeFiles/ml4db_common.dir/status.cc.o"
  "CMakeFiles/ml4db_common.dir/status.cc.o.d"
  "libml4db_common.a"
  "libml4db_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
