file(REMOVE_RECURSE
  "libml4db_common.a"
)
