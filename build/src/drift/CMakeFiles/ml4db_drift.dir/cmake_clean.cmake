file(REMOVE_RECURSE
  "CMakeFiles/ml4db_drift.dir/detectors.cc.o"
  "CMakeFiles/ml4db_drift.dir/detectors.cc.o.d"
  "libml4db_drift.a"
  "libml4db_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
