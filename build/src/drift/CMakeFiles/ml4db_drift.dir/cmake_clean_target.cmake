file(REMOVE_RECURSE
  "libml4db_drift.a"
)
