# Empty dependencies file for ml4db_drift.
# This may be replaced when dependencies are built.
