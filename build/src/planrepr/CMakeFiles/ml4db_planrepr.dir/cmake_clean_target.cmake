file(REMOVE_RECURSE
  "libml4db_planrepr.a"
)
