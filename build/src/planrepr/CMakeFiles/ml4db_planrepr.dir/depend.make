# Empty dependencies file for ml4db_planrepr.
# This may be replaced when dependencies are built.
