file(REMOVE_RECURSE
  "CMakeFiles/ml4db_planrepr.dir/plan_features.cc.o"
  "CMakeFiles/ml4db_planrepr.dir/plan_features.cc.o.d"
  "CMakeFiles/ml4db_planrepr.dir/plan_regressor.cc.o"
  "CMakeFiles/ml4db_planrepr.dir/plan_regressor.cc.o.d"
  "libml4db_planrepr.a"
  "libml4db_planrepr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_planrepr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
