
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planrepr/plan_features.cc" "src/planrepr/CMakeFiles/ml4db_planrepr.dir/plan_features.cc.o" "gcc" "src/planrepr/CMakeFiles/ml4db_planrepr.dir/plan_features.cc.o.d"
  "/root/repo/src/planrepr/plan_regressor.cc" "src/planrepr/CMakeFiles/ml4db_planrepr.dir/plan_regressor.cc.o" "gcc" "src/planrepr/CMakeFiles/ml4db_planrepr.dir/plan_regressor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ml4db_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ml4db_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ml4db_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
