file(REMOVE_RECURSE
  "CMakeFiles/ml4db_survey.dir/corpus.cc.o"
  "CMakeFiles/ml4db_survey.dir/corpus.cc.o.d"
  "libml4db_survey.a"
  "libml4db_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml4db_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
