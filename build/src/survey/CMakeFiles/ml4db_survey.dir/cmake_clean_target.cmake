file(REMOVE_RECURSE
  "libml4db_survey.a"
)
