# Empty dependencies file for ml4db_survey.
# This may be replaced when dependencies are built.
