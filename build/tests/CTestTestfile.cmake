# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/tree_models_test[1]_include.cmake")
include("/root/repo/build/tests/bayes_linear_test[1]_include.cmake")
include("/root/repo/build/tests/rl_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/learned_index_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/planrepr_test[1]_include.cmake")
include("/root/repo/build/tests/costest_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/drift_pretrain_survey_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_datagen_test[1]_include.cmake")
