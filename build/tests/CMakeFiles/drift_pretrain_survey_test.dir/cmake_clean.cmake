file(REMOVE_RECURSE
  "CMakeFiles/drift_pretrain_survey_test.dir/drift_pretrain_survey_test.cc.o"
  "CMakeFiles/drift_pretrain_survey_test.dir/drift_pretrain_survey_test.cc.o.d"
  "drift_pretrain_survey_test"
  "drift_pretrain_survey_test.pdb"
  "drift_pretrain_survey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_pretrain_survey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
