# Empty dependencies file for drift_pretrain_survey_test.
# This may be replaced when dependencies are built.
