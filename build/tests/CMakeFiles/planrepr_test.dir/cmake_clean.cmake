file(REMOVE_RECURSE
  "CMakeFiles/planrepr_test.dir/planrepr_test.cc.o"
  "CMakeFiles/planrepr_test.dir/planrepr_test.cc.o.d"
  "planrepr_test"
  "planrepr_test.pdb"
  "planrepr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planrepr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
