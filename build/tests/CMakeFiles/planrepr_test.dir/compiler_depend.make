# Empty compiler generated dependencies file for planrepr_test.
# This may be replaced when dependencies are built.
