# Empty dependencies file for costest_test.
# This may be replaced when dependencies are built.
