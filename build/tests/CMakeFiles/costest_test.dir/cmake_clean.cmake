file(REMOVE_RECURSE
  "CMakeFiles/costest_test.dir/costest_test.cc.o"
  "CMakeFiles/costest_test.dir/costest_test.cc.o.d"
  "costest_test"
  "costest_test.pdb"
  "costest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
