file(REMOVE_RECURSE
  "CMakeFiles/advisor_datagen_test.dir/advisor_datagen_test.cc.o"
  "CMakeFiles/advisor_datagen_test.dir/advisor_datagen_test.cc.o.d"
  "advisor_datagen_test"
  "advisor_datagen_test.pdb"
  "advisor_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
