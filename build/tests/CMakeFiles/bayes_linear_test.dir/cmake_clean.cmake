file(REMOVE_RECURSE
  "CMakeFiles/bayes_linear_test.dir/bayes_linear_test.cc.o"
  "CMakeFiles/bayes_linear_test.dir/bayes_linear_test.cc.o.d"
  "bayes_linear_test"
  "bayes_linear_test.pdb"
  "bayes_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bayes_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
