# Empty dependencies file for bayes_linear_test.
# This may be replaced when dependencies are built.
