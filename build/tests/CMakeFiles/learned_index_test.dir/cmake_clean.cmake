file(REMOVE_RECURSE
  "CMakeFiles/learned_index_test.dir/learned_index_test.cc.o"
  "CMakeFiles/learned_index_test.dir/learned_index_test.cc.o.d"
  "learned_index_test"
  "learned_index_test.pdb"
  "learned_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
