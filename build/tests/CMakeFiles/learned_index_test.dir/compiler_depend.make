# Empty compiler generated dependencies file for learned_index_test.
# This may be replaced when dependencies are built.
