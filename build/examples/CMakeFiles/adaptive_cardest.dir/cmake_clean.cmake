file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cardest.dir/adaptive_cardest.cpp.o"
  "CMakeFiles/adaptive_cardest.dir/adaptive_cardest.cpp.o.d"
  "adaptive_cardest"
  "adaptive_cardest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cardest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
