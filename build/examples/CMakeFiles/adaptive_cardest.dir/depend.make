# Empty dependencies file for adaptive_cardest.
# This may be replaced when dependencies are built.
