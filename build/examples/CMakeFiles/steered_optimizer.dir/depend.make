# Empty dependencies file for steered_optimizer.
# This may be replaced when dependencies are built.
