file(REMOVE_RECURSE
  "CMakeFiles/steered_optimizer.dir/steered_optimizer.cpp.o"
  "CMakeFiles/steered_optimizer.dir/steered_optimizer.cpp.o.d"
  "steered_optimizer"
  "steered_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steered_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
