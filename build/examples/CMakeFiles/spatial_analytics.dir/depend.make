# Empty dependencies file for spatial_analytics.
# This may be replaced when dependencies are built.
