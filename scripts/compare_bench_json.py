#!/usr/bin/env python3
"""Gate bench_serve runs against a checked-in baseline (bench regression CI).

Usage:
  compare_bench_json.py CANDIDATE.json --baseline BASELINE.json [flags]
  compare_bench_json.py CANDIDATE.json --baseline BASELINE.json --update

Compares the serving-bench export (schema v1, as validated by
check_bench_json.py) against a baseline export and fails when the candidate
regresses:

  * client p95 latency (ml4db.serve.client_latency_us histogram): fails when
    candidate_p95 > max(baseline_p95 * (1 + --latency-slack),
                        baseline_p95 + --latency-abs-slack-us).
    The absolute floor keeps sub-millisecond baselines from turning CI
    scheduling jitter into failures.
  * shed rate (ml4db.serve.shed_total / ml4db.serve.sent_total, writes
    included when present): fails when the candidate sheds and its rate
    exceeds max(baseline_rate * (1 + --latency-slack), --shed-abs-slack).

--update rewrites BASELINE.json from the candidate (with the volatile run
block reduced to the fields the gate reads) instead of comparing; commit the
result to refresh the baseline deliberately.

Flags:
  --latency-slack F        relative headroom, default 0.25 (25%)
  --latency-abs-slack-us F absolute headroom in us, default 2000
  --shed-abs-slack F       absolute shed-rate headroom, default 0.01
  --quiet                  print nothing on success
"""

import json
import sys

DEFAULT_LATENCY_SLACK = 0.25
DEFAULT_LATENCY_ABS_SLACK_US = 2000.0
DEFAULT_SHED_ABS_SLACK = 0.01

LATENCY_HIST = "ml4db.serve.client_latency_us"


class GateError(Exception):
    pass


def _metric_maps(doc):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise GateError("export has no metrics object")
    counters = {c["name"]: c["value"] for c in metrics.get("counters", [])}
    histograms = {h["name"]: h for h in metrics.get("histograms", [])}
    return counters, histograms


def _p95(doc, label):
    _, histograms = _metric_maps(doc)
    h = histograms.get(LATENCY_HIST)
    if h is None:
        raise GateError(f"{label}: missing histogram {LATENCY_HIST}")
    if h.get("count", 0) <= 0:
        raise GateError(f"{label}: {LATENCY_HIST} has no samples")
    return float(h["p95"])


def _shed_rate(doc, label):
    counters, _ = _metric_maps(doc)
    sent = counters.get("ml4db.serve.sent_total", 0)
    sent += counters.get("ml4db.serve.write_sent_total", 0)
    shed = counters.get("ml4db.serve.shed_total", 0)
    shed += counters.get("ml4db.serve.write_shed_total", 0)
    if sent <= 0:
        raise GateError(f"{label}: ml4db.serve.sent_total is zero")
    return float(shed) / float(sent)


def compare(candidate, baseline, latency_slack, latency_abs_slack_us,
            shed_abs_slack):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    cand_p95 = _p95(candidate, "candidate")
    base_p95 = _p95(baseline, "baseline")
    p95_limit = max(base_p95 * (1.0 + latency_slack),
                    base_p95 + latency_abs_slack_us)
    if cand_p95 > p95_limit:
        failures.append(
            f"client p95 latency regressed: {cand_p95:.1f}us vs baseline "
            f"{base_p95:.1f}us (limit {p95_limit:.1f}us)")

    cand_shed = _shed_rate(candidate, "candidate")
    base_shed = _shed_rate(baseline, "baseline")
    shed_limit = max(base_shed * (1.0 + latency_slack), shed_abs_slack)
    if cand_shed > shed_limit:
        failures.append(
            f"shed rate regressed: {cand_shed:.4f} vs baseline "
            f"{base_shed:.4f} (limit {shed_limit:.4f})")
    return failures, {
        "cand_p95": cand_p95, "base_p95": base_p95, "p95_limit": p95_limit,
        "cand_shed": cand_shed, "base_shed": base_shed,
        "shed_limit": shed_limit,
    }


def make_baseline(candidate):
    """Reduces a candidate export to a stable baseline document: only the
    metrics the gate reads, so refreshing the baseline produces a small,
    reviewable diff."""
    counters, histograms = _metric_maps(candidate)
    keep_counters = sorted(
        n for n in counters
        if n in ("ml4db.serve.sent_total", "ml4db.serve.shed_total",
                 "ml4db.serve.write_sent_total",
                 "ml4db.serve.write_shed_total"))
    hist = histograms.get(LATENCY_HIST)
    if hist is None:
        raise GateError(f"--update: candidate missing {LATENCY_HIST}")
    return {
        "schema_version": 1,
        "bench": candidate.get("bench", "serve"),
        "note": ("serving-latency baseline for compare_bench_json.py; "
                 "regenerate with --update from a quiet machine"),
        "config": candidate.get("config", {}),
        "metrics": {
            "counters": [{"name": n, "value": counters[n]}
                         for n in keep_counters],
            "gauges": [],
            "histograms": [dict(
                {k: hist[k] for k in ("name", "count", "sum", "min", "max",
                                      "p50", "p95", "p99")},
                buckets=[])],
        },
    }


def _float_flag(args, name, default):
    if name in args:
        i = args.index(name)
        if i + 1 >= len(args):
            print(f"{name} needs a value", file=sys.stderr)
            sys.exit(2)
        value = float(args[i + 1])
        del args[i:i + 2]
        return value
    return default


def main(argv):
    args = list(argv[1:])
    quiet = "--quiet" in args
    update = "--update" in args
    args = [a for a in args if a not in ("--quiet", "--update")]
    latency_slack = _float_flag(args, "--latency-slack",
                                DEFAULT_LATENCY_SLACK)
    latency_abs = _float_flag(args, "--latency-abs-slack-us",
                              DEFAULT_LATENCY_ABS_SLACK_US)
    shed_abs = _float_flag(args, "--shed-abs-slack", DEFAULT_SHED_ABS_SLACK)
    if "--baseline" not in args:
        print(__doc__, file=sys.stderr)
        return 2
    i = args.index("--baseline")
    if i + 1 >= len(args):
        print("--baseline needs a FILE", file=sys.stderr)
        return 2
    baseline_path = args[i + 1]
    del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    candidate_path = args[0]

    with open(candidate_path, "r", encoding="utf-8") as f:
        candidate = json.load(f)

    try:
        if update:
            doc = make_baseline(candidate)
            with open(baseline_path, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
                f.write("\n")
            if not quiet:
                h = doc["metrics"]["histograms"][0]
                print(f"baseline updated [{baseline_path}]: "
                      f"p95={h['p95']:.1f}us count={h['count']}")
            return 0

        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        failures, stats = compare(candidate, baseline, latency_slack,
                                  latency_abs, shed_abs)
    except GateError as e:
        print(f"FAIL [{candidate_path}]: {e}", file=sys.stderr)
        return 1
    if failures:
        for msg in failures:
            print(f"FAIL [{candidate_path}]: {msg}", file=sys.stderr)
        return 1
    if not quiet:
        print(f"OK [{candidate_path}]: p95={stats['cand_p95']:.1f}us "
              f"(baseline {stats['base_p95']:.1f}us, "
              f"limit {stats['p95_limit']:.1f}us), "
              f"shed={stats['cand_shed']:.4f} "
              f"(limit {stats['shed_limit']:.4f})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
