#!/usr/bin/env bash
# End-to-end smoke of the query-serving front-end and its admin plane:
#   1. start ml4db_server on ephemeral query + admin ports (small db),
#   2. probe /healthz and /readyz, then drive the server with bench_serve
#      (closed-loop, ~2s, scraping the admin plane for the whole run) and
#      require zero lost responses,
#   3. validate a /metrics scrape against the Prometheus text contract
#      (check_prom_text.py), /slow against the stage-attribution
#      contract (queue_wait/optimize/execute breakdown), and /indexes
#      against the fleet-view contract (probe-error telemetry per
#      structure, retrain audit trail, text/json parity),
#   4. validate both JSON exports against the bench schema
#      (--require-server on the server side),
#   5. SIGTERM the server: /readyz must flip away from 200 during the
#      drain, and the process must exit 0.
#
# Usage: serve_smoke.sh BUILD_DIR [DURATION_MS] [INDEX_BACKEND] [MODE]
# INDEX_BACKEND (default sorted) selects the engine's index structure; the
# run also enables a fast background retrain loop so replacement backends
# are rebuilt and atomically swapped in mid-load — the smoke fails if that
# loses a request or trips a sanitizer. Runs under ASan in CI, so a leak
# or race in the shutdown path fails here.
# MODE=writes drives a mixed read/write load (bench_serve --write-ratio
# 0.2) with a small ML4DB_DELTA_MERGE_THRESHOLD so delta folds happen
# mid-ingest, and additionally asserts the write-path metric contract
# (writes counter, delta-size and staleness gauges on /metrics; the
# ml4db.server.writes_* set in the server's JSON export).
# MODE=shards starts the server with --shards 4 and staleness-only retrains
# (no interval rebuilds), asserts the pre-registered ml4db_shard_* metrics
# read zero before any write, then fires a bounded INSERT burst pinned to
# one shard (bench_serve --write-shard) and requires the resulting retrain
# to rebuild exactly that shard — ml4db_shard_retrains_total moves by 1,
# the other shards' counters stay at 0, and reads keep flowing throughout.
set -euo pipefail

BUILD_DIR=${1:?usage: serve_smoke.sh BUILD_DIR [DURATION_MS] [INDEX_BACKEND] [MODE]}
DURATION_MS=${2:-2000}
BACKEND=${3:-sorted}
MODE=${4:-}
WRITE_RATIO=0
SHARDS=0
if [[ "$MODE" == "writes" ]]; then
  WRITE_RATIO=0.2
elif [[ "$MODE" == "shards" ]]; then
  SHARDS=4
  # Shard the pinned write burst crosses; must be < SHARDS.
  BURST_SHARD=2
  BURST_ROWS=600
elif [[ -n "$MODE" ]]; then
  echo "FAIL: unknown mode '$MODE' ('writes' and 'shards' are recognised)" >&2
  exit 2
fi
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVER="$BUILD_DIR/bin/ml4db_server"
BENCH="$BUILD_DIR/bench/bench_serve"
CHECK="$REPO_ROOT/scripts/check_bench_json.py"
CHECK_PROM="$REPO_ROOT/scripts/check_prom_text.py"
CURL="curl -sS -m 10"

# First value of the exactly-named Prometheus sample $1 in scrape file $2
# (empty when absent). Counters render as integers, gauges via %.10g, so
# small whole numbers compare exactly as strings.
prom_value() { awk -v m="$1" '$1 == m {print $2; exit}' "$2"; }

WORK_DIR=$(mktemp -d -t serve_smoke.XXXXXX)
SERVER_PID=
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

PORT_FILE="$WORK_DIR/port"
ADMIN_PORT_FILE="$WORK_DIR/admin_port"
SERVER_ARGS=(--retrain-interval-ms 300)
if [[ "$WRITE_RATIO" != "0" ]]; then
  # Small threshold so the delta is folded (rebuild-and-swap) mid-ingest,
  # on top of the interval-driven retrains already configured below.
  export ML4DB_DELTA_MERGE_THRESHOLD=256
elif [[ "$SHARDS" -gt 0 ]]; then
  # Staleness-only retrains: no interval rebuilds, so the only swaps this
  # run can see are the ones triggered by a shard crossing the stale-row
  # threshold — which makes "exactly one shard rebuilt" assertable.
  export ML4DB_DELTA_MERGE_THRESHOLD=400
  SERVER_ARGS=(--shards "$SHARDS")
fi
"$SERVER" --port 0 --port-file "$PORT_FILE" \
  --admin-port 0 --admin-port-file "$ADMIN_PORT_FILE" \
  --fact-rows 4000 --dim-rows 500 \
  --index-backend "$BACKEND" "${SERVER_ARGS[@]}" \
  --json "$WORK_DIR/server.json" >"$WORK_DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the port files (the server writes them once it is listening;
# the admin port lands last, after the query listener).
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" && -s "$ADMIN_PORT_FILE" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$WORK_DIR/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "FAIL: server never bound a port" >&2; exit 1; }
[[ -s "$ADMIN_PORT_FILE" ]] || { echo "FAIL: admin plane never bound" >&2; exit 1; }
PORT=$(cat "$PORT_FILE")
ADMIN_PORT=$(cat "$ADMIN_PORT_FILE")
echo "serve_smoke: server pid=$SERVER_PID port=$PORT admin=$ADMIN_PORT backend=$BACKEND"

# Liveness and readiness before any load.
[[ "$($CURL "http://127.0.0.1:$ADMIN_PORT/healthz")" == "ok" ]] || {
  echo "FAIL: /healthz did not answer ok" >&2; exit 1; }
READY_CODE=$($CURL -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$ADMIN_PORT/readyz")
[[ "$READY_CODE" == "200" ]] || {
  echo "FAIL: /readyz returned $READY_CODE before shutdown" >&2; exit 1; }

SHARD_OBS=
if [[ "$SHARDS" -gt 0 ]]; then
  # Pre-load scrape: the shard layout must be visible, and every shard
  # metric — including the delta/staleness gauges — must already be
  # registered AT ZERO before the first write ever arrives (a dashboard
  # querying a fresh server sees explicit zeros, not absent series).
  $CURL "http://127.0.0.1:$ADMIN_PORT/metrics" >"$WORK_DIR/metrics0.prom"
  grep -q 'obs="on"' "$WORK_DIR/metrics0.prom" && SHARD_OBS=yes
  if [[ -n "$SHARD_OBS" ]]; then
    [[ "$(prom_value ml4db_shard_count "$WORK_DIR/metrics0.prom")" == "$SHARDS" ]] || {
      echo "FAIL: ml4db_shard_count != $SHARDS on a --shards $SHARDS server" >&2
      exit 1; }
    for metric in ml4db_shard_retrains_total ml4db_drift_retrains_coalesced \
                  ml4db_delta_rows ml4db_delta_deleted ml4db_index_stale_rows \
                  $(seq -f "ml4db_shard_retrains_s%g" 0 $((SHARDS - 1))); do
      VAL=$(prom_value "$metric" "$WORK_DIR/metrics0.prom")
      [[ "$VAL" == "0" ]] || {
        echo "FAIL: $metric should pre-register at 0, got '${VAL:-absent}'" >&2
        exit 1; }
    done
  fi
fi

BENCH_EXTRA=()
if [[ "$SHARDS" -gt 0 ]]; then
  BENCH_EXTRA=(--shards "$SHARDS")  # recorded in serve.json's config
fi
"$BENCH" --port "$PORT" --connections 4 --duration-ms "$DURATION_MS" \
  --admin-port "$ADMIN_PORT" --scrape-interval-ms 100 \
  --index-backend "$BACKEND" --write-ratio "$WRITE_RATIO" \
  "${BENCH_EXTRA[@]}" --json "$WORK_DIR/serve.json"

if [[ -n "$SHARD_OBS" ]]; then
  # The read load must have fanned scans across shards without triggering
  # a single retrain (staleness-only mode, nothing written yet).
  $CURL "http://127.0.0.1:$ADMIN_PORT/metrics" >"$WORK_DIR/metrics1.prom"
  SCANS=$(prom_value ml4db_shard_scan_tasks_total "$WORK_DIR/metrics1.prom")
  [[ -n "$SCANS" && "$SCANS" != "0" ]] || {
    echo "FAIL: no sharded scan tasks recorded under read load" >&2; exit 1; }
  [[ "$(prom_value ml4db_shard_retrains_total "$WORK_DIR/metrics1.prom")" == "0" ]] || {
    echo "FAIL: a retrain fired before any write" >&2; exit 1; }
  SWAPS0=$(prom_value ml4db_index_swaps_total "$WORK_DIR/metrics1.prom")

  # Bounded INSERT burst pinned to one shard: BURST_ROWS rows, every one
  # routed (by partition key) into shard BURST_SHARD, crossing the 400-row
  # staleness threshold there and nowhere else.
  "$BENCH" --port "$PORT" --connections 2 --duration-ms 2000 \
    --index-backend "$BACKEND" --write-ratio 1 \
    --shards "$SHARDS" --write-shard "$BURST_SHARD" --write-count "$BURST_ROWS"

  # The retrain loop wakes every 100ms; the fit then runs on the pool and
  # the finished backend is swapped in on the next wake. Poll until the
  # pinned shard's retrain counter moves AND the swap lands.
  RETRAIN_SEEN=
  for _ in $(seq 1 100); do
    $CURL "http://127.0.0.1:$ADMIN_PORT/metrics" >"$WORK_DIR/metrics2.prom"
    HIT=$(prom_value "ml4db_shard_retrains_s$BURST_SHARD" "$WORK_DIR/metrics2.prom")
    SWAPS=$(prom_value ml4db_index_swaps_total "$WORK_DIR/metrics2.prom")
    if [[ "$HIT" != "0" && -n "$SWAPS" && "$SWAPS" != "$SWAPS0" ]]; then
      RETRAIN_SEEN=yes
      break
    fi
    sleep 0.1
  done
  [[ -n "$RETRAIN_SEEN" ]] || {
    echo "FAIL: pinned burst never triggered a shard-$BURST_SHARD retrain" >&2
    cat "$WORK_DIR/metrics2.prom" >&2; exit 1; }
  # Exactly ONE shard rebuilt: the totals counter moved by one and every
  # other shard's counter is still zero — the survey's targeted-updates
  # claim, observable.
  [[ "$(prom_value ml4db_shard_retrains_total "$WORK_DIR/metrics2.prom")" == "1" ]] || {
    echo "FAIL: expected exactly 1 shard retrain, got" \
      "$(prom_value ml4db_shard_retrains_total "$WORK_DIR/metrics2.prom")" >&2
    exit 1; }
  for s in $(seq 0 $((SHARDS - 1))); do
    [[ "$s" -eq "$BURST_SHARD" ]] && continue
    [[ "$(prom_value "ml4db_shard_retrains_s$s" "$WORK_DIR/metrics2.prom")" == "0" ]] || {
      echo "FAIL: shard $s was rebuilt by a burst pinned to shard $BURST_SHARD" >&2
      exit 1; }
  done
  # The untouched shards kept serving throughout: a post-swap read load
  # must still lose zero responses (bench_serve exits non-zero otherwise).
  "$BENCH" --port "$PORT" --connections 4 --duration-ms 500 \
    --index-backend "$BACKEND"
  echo "serve_smoke: single-shard retrain OK (shard $BURST_SHARD only)"
fi

# Scrape under (residual) load and validate the Prometheus contract. The
# windowed instruments and slow-query requirements only hold when the
# server was built with observability on — ml4db_build_info says which.
$CURL "http://127.0.0.1:$ADMIN_PORT/metrics" >"$WORK_DIR/metrics.prom"
# The index-backend info metric is rendered in both obs modes: which
# structure serves probes is config, not a measurement.
grep -q "ml4db_index_backend{backend=\"$BACKEND\"}" "$WORK_DIR/metrics.prom" || {
  echo "FAIL: /metrics missing ml4db_index_backend{backend=\"$BACKEND\"}" >&2
  exit 1; }
if grep -q 'obs="on"' "$WORK_DIR/metrics.prom"; then
  WRITE_PROM_ARGS=()
  if [[ "$WRITE_RATIO" != "0" || "$SHARDS" -gt 0 ]]; then
    # Write mode (and the sharded burst): the server must have executed
    # writes, and the delta-store and index-staleness gauges must be
    # rendered (possibly zero right after a fold swept the delta into
    # rebuilt indexes).
    WRITE_PROM_ARGS=(--require-nonzero ml4db_server_writes_total
                     --require-nonzero ml4db_server_writes_rows_total
                     --require ml4db_delta_rows
                     --require ml4db_index_stale_rows)
  fi
  if [[ "$SHARDS" -gt 0 ]]; then
    WRITE_PROM_ARGS+=(--require-nonzero ml4db_shard_count
                      --require-nonzero ml4db_shard_scan_tasks_total
                      --require ml4db_shard_pruned_total
                      --require-nonzero ml4db_shard_retrains_total)
  fi
  if [[ "$WRITE_RATIO" != "0" || "$SHARDS" -gt 0 ]]; then
    # Both write modes guarantee at least one audited rebuild-and-swap
    # before this scrape (interval+threshold in writes mode, the pinned
    # burst in shards mode), so the audit histograms must carry samples.
    WRITE_PROM_ARGS+=(--require-nonzero ml4db_retrain_build_us
                      --require-nonzero ml4db_retrain_rows_folded)
  fi
  python3 "$CHECK_PROM" "$WORK_DIR/metrics.prom" \
    "${WRITE_PROM_ARGS[@]}" \
    --require ml4db_retrain_build_us \
    --require ml4db_retrain_swap_us \
    --require ml4db_retrain_rows_folded \
    --require-nonzero ml4db_index_probe_err \
    --require-nonzero ml4db_index_recent_probe_err \
    --require-nonzero ml4db_server_recent_qps \
    --require-nonzero ml4db_server_recent_request_latency_us \
    --require-nonzero ml4db_server_request_latency_us \
    --require-nonzero ml4db_server_queue_wait_us \
    --require-nonzero ml4db_index_probe_us \
    --require-nonzero ml4db_index_structure_bytes \
    --require-nonzero ml4db_index_swaps_total \
    --require-nonzero ml4db_workload_shapes \
    --require-nonzero ml4db_workload_samples_total \
    --require-nonzero ml4db_workload_qerror \
    --require-histogram ml4db_workload_qerror \
    --require ml4db_workload_evictions_total \
    --require ml4db_workload_drift_total \
    --require ml4db_build_info \
    --require-nonzero ml4db_uptime_seconds \
    --require-nonzero ml4db_plan_cache_hits \
    --require ml4db_plan_cache_misses \
    --require ml4db_plan_cache_invalidations \
    --require-nonzero ml4db_server_arena_high_water_bytes
  # Plan cache: a serving workload repeats a bounded set of query shapes,
  # so at steady state nearly every request must plan off the cache —
  # even though the background retrain swaps (and, in writes mode, delta
  # folds) keep bumping the invalidation epoch mid-run.
  PC_HITS=$(prom_value ml4db_plan_cache_hits "$WORK_DIR/metrics.prom")
  PC_MISSES=$(prom_value ml4db_plan_cache_misses "$WORK_DIR/metrics.prom")
  python3 - "$PC_HITS" "$PC_MISSES" <<'PYEOF'
import sys
hits, misses = float(sys.argv[1]), float(sys.argv[2])
assert hits + misses > 0, "plan cache was never consulted under load"
rate = hits / (hits + misses)
assert rate > 0.9, (f"plan-cache hit rate {rate:.3f} <= 0.9 "
                    f"(hits={hits:.0f} misses={misses:.0f})")
print(f"plan cache OK: hit rate {rate:.3f} "
      f"({hits:.0f}/{hits + misses:.0f} lookups)")
PYEOF
  # Session arena: responses encode into a reusable per-session buffer;
  # a loaded run must have grown it (a zero high-water mark would mean
  # the arena path never ran).
  ARENA_HW=$(prom_value ml4db_server_arena_high_water_bytes "$WORK_DIR/metrics.prom")
  [[ -n "$ARENA_HW" && "$ARENA_HW" != "0" ]] || {
    echo "FAIL: ml4db_server_arena_high_water_bytes is" \
      "'${ARENA_HW:-absent}' after a loaded run" >&2
    exit 1; }
  echo "serve_smoke: arena high-water ${ARENA_HW} bytes"
  $CURL "http://127.0.0.1:$ADMIN_PORT/slow" >"$WORK_DIR/slow.json"
  python3 - "$WORK_DIR/slow.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
entries = doc["entries"]
assert entries, "/slow returned no entries after a loaded run"
assert len(entries) <= doc["k"], f"{len(entries)} entries exceed k={doc['k']}"
assert doc["considered"] >= len(entries), "considered < retained"
totals = [e["total_us"] for e in entries]
assert totals == sorted(totals, reverse=True), "entries not slowest-first"
# A stage's cost is its own latency or its subtree cost (the execute root
# carries the plan's priced cost in actual_cost, latency 0 by contract).
stages = {}
for e in entries:
    for s in e["trace"]["spans"]:
        cost = max(s.get("latency", 0), s.get("actual_cost", 0))
        stages[s["name"]] = max(stages.get(s["name"], 0), cost)
for stage in ("queue_wait", "optimize", "execute"):
    assert stage in stages, f"slow trace missing {stage} stage"
    assert stages[stage] > 0, f"{stage} stage has zero cost in every entry"
print(f"slow-query store OK: {len(entries)} entries, "
      f"threshold={doc['threshold_us']:.1f}us")
PYEOF
  $CURL "http://127.0.0.1:$ADMIN_PORT/events?n=16" >"$WORK_DIR/events.json"
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); \
assert isinstance(d["events"], list) and d["capacity"] > 0' \
    "$WORK_DIR/events.json"
  # Workload intelligence plane: after a random-query load the store must
  # hold several distinct shapes with q-error observations, and the text
  # rendering must agree with the JSON one (same top shape fingerprint).
  $CURL "http://127.0.0.1:$ADMIN_PORT/workload?format=json&n=10" \
    >"$WORK_DIR/workload.json"
  $CURL "http://127.0.0.1:$ADMIN_PORT/workload?format=text&n=10" \
    >"$WORK_DIR/workload.txt"
  python3 - "$WORK_DIR/workload.json" "$WORK_DIR/workload.txt" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
text = open(sys.argv[2]).read()
assert doc["shapes"] >= 2, f"only {doc['shapes']} shapes profiled"
assert doc["samples"] > 0, "no workload samples recorded"
top = doc["top"]
assert top, "/workload returned an empty top list"
assert any(s["qerror"]["samples"] > 0 and s["qerror"]["max"] >= 1.0
           for s in top), "no shape carries q-error observations"
for s in top:
    q = s["qerror"]
    for v in (q["max"], q["geomean"], q["recent_p95"], s["drift"]["score"]):
        assert v == v and v not in (float("inf"), float("-inf")), \
            f"non-finite q-error stat in shape {s['fingerprint']}"
assert top[0]["fingerprint"] in text, \
    "text rendering missing the JSON top shape fingerprint"
print(f"workload plane OK: {doc['shapes']} shapes, "
      f"{doc['samples']} samples, top count={top[0]['count']}")
PYEOF
  WL_BAD=$($CURL -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$ADMIN_PORT/workload?n=abc")
  [[ "$WL_BAD" == "400" ]] || {
    echo "FAIL: /workload?n=abc returned $WL_BAD, want 400" >&2; exit 1; }
  # Learned-component health plane: after a loaded run the fleet view must
  # cover every indexed (table, column, shard) with live probe telemetry,
  # the text rendering must agree with the JSON one, and in the write
  # modes the retrain audit trail must show what fired each rebuild.
  $CURL "http://127.0.0.1:$ADMIN_PORT/indexes?format=json" \
    >"$WORK_DIR/indexes.json"
  $CURL "http://127.0.0.1:$ADMIN_PORT/indexes?format=text" \
    >"$WORK_DIR/indexes.txt"
  python3 - "$WORK_DIR/indexes.json" "$WORK_DIR/indexes.txt" "${MODE:-plain}" \
    <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
text = open(sys.argv[2]).read()
mode = sys.argv[3]
entries = doc["entries"]
assert doc["entry_count"] >= 1, "fleet view is empty after a loaded run"
assert len(entries) == doc["entry_count"], "entry_count != len(entries)"
# Per-structure sample counters reset at every swap and the interval
# retrain loop keeps swapping after load stops, so this point-in-time
# total may be zero; nonzero DURING load is asserted via bench_serve's
# scrape peak (check_bench_json --require-introspection) and cumulatively
# via ml4db_index_probe_err in the /metrics contract above.
assert doc["probe_err_samples"] >= 0
for e in entries:
    assert e["backend"], f"entry {e['table']}:{e['column_index']} lacks a backend"
    assert e["covered_rows"] >= 0 and e["structure_bytes"] > 0, \
        f"implausible structure state in {e['table']}:{e['column_index']}"
# text/json parity: same fleet, same summary fields.
assert "probe_err_p95" in text, "text rendering missing the summary header"
for e in entries:
    assert e["table"] in text, f"table {e['table']} absent from text rendering"
valid = {"interval", "staleness", "coalesced"}
for r in doc["audit"]:
    assert r["trigger"] in valid, f"unknown trigger {r['trigger']!r}"
    assert r["build_us"] > 0, f"audit #{r['seq']} has zero build time"
if mode == "writes":
    assert doc["retrains"] > 0, "writes mode finished with an empty audit"
    assert any(r["rows_folded"] > 0 for r in doc["audit"]), \
        "no audited retrain folded delta rows in writes mode"
if mode == "shards":
    assert any(r["trigger"] == "staleness" for r in doc["audit"]), \
        "the pinned-burst retrain was not audited as staleness-triggered"
print(f"index fleet OK: {doc['entry_count']} entries, "
      f"{doc['probe_err_samples']} probe-error samples, "
      f"{doc['retrains']} audited retrains")
PYEOF
  # Table filter: restricting to the first entry's table must return only
  # that table's structures (and at least one of them).
  IDX_TBL=$(python3 -c 'import json,sys;
print(json.load(open(sys.argv[1]))["entries"][0]["table"])' \
    "$WORK_DIR/indexes.json")
  $CURL "http://127.0.0.1:$ADMIN_PORT/indexes?format=json&table=$IDX_TBL" \
    >"$WORK_DIR/indexes_tbl.json"
  python3 - "$WORK_DIR/indexes_tbl.json" "$IDX_TBL" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
want = sys.argv[2]
assert doc["entry_count"] >= 1, f"?table={want} filtered everything out"
assert all(e["table"] == want for e in doc["entries"]), \
    f"?table={want} leaked other tables into the fleet view"
PYEOF
  IDX_BAD=$($CURL -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$ADMIN_PORT/indexes?format=bogus")
  [[ "$IDX_BAD" == "400" ]] || {
    echo "FAIL: /indexes?format=bogus returned $IDX_BAD, want 400" >&2
    exit 1; }
else
  # ML4DB_OBS_DISABLED: /metrics still serves build info + uptime, and the
  # workload endpoint must not exist (the hook is nulled at wiring time).
  python3 "$CHECK_PROM" "$WORK_DIR/metrics.prom" --require ml4db_build_info
  WL_CODE=$($CURL -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$ADMIN_PORT/workload")
  [[ "$WL_CODE" == "404" ]] || {
    echo "FAIL: /workload returned $WL_CODE with obs disabled, want 404" >&2
    exit 1; }
  # The fleet view rides the same contract: no obs plane, no /indexes.
  IDX_CODE=$($CURL -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$ADMIN_PORT/indexes")
  [[ "$IDX_CODE" == "404" ]] || {
    echo "FAIL: /indexes returned $IDX_CODE with obs disabled, want 404" >&2
    exit 1; }
fi
# Malformed admin query params are rejected in both obs modes.
EVENTS_BAD=$($CURL -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$ADMIN_PORT/events?n=bogus")
[[ "$EVENTS_BAD" == "400" ]] || {
  echo "FAIL: /events?n=bogus returned $EVENTS_BAD, want 400" >&2; exit 1; }
# Unknown endpoints 404 rather than crash or hang.
NOT_FOUND=$($CURL -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$ADMIN_PORT/nope")
[[ "$NOT_FOUND" == "404" ]] || {
  echo "FAIL: unknown admin endpoint returned $NOT_FOUND" >&2; exit 1; }

# Overload burst: open-loop far above capacity with a small queue is the
# load-shedding path; bench_serve still exits 0 because sheds are answered.
"$BENCH" --port "$PORT" --connections 4 --duration-ms 500 \
  --qps 50000 --deadline-ms 1000

# Graceful shutdown: SIGTERM must drain and exit 0 (ASan adds leak checks).
# Readiness must flip away from 200 while draining — before the admin
# listener closes — so a load balancer stops sending first. Any answer the
# admin plane still gives must be 503; once it is gone, connection-refused
# (curl exit 7) is also a pass. A lingering 200 is the bug.
kill -TERM "$SERVER_PID"
READY_FLIPPED=
for _ in $(seq 1 50); do
  CODE=$($CURL -o /dev/null -w '%{http_code}' \
    "http://127.0.0.1:$ADMIN_PORT/readyz" 2>/dev/null) || CODE=refused
  if [[ "$CODE" == "503" || "$CODE" == "refused" || "$CODE" == "000" ]]; then
    READY_FLIPPED=yes
    break
  fi
  sleep 0.1
done
[[ -n "$READY_FLIPPED" ]] || {
  echo "FAIL: /readyz still 200 during drain" >&2; exit 1; }
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
SERVER_PID=
if [[ "$SERVER_STATUS" -ne 0 ]]; then
  echo "FAIL: server exited with $SERVER_STATUS after SIGTERM" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
fi
grep -q "draining" "$WORK_DIR/server.log" || {
  echo "FAIL: server log missing drain message" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}

if grep -q '"obs_enabled": true' "$WORK_DIR/server.json"; then
  WRITE_JSON_ARGS=()
  if [[ "$WRITE_RATIO" != "0" ]]; then
    WRITE_JSON_ARGS=(--require-writes)
  fi
  SHARD_JSON_ARGS=()
  if [[ "$SHARDS" -gt 0 ]]; then
    # Both exports must be shard-aware: the burst executed writes, and the
    # ml4db.shard.* family must appear in the server's JSON.
    WRITE_JSON_ARGS=(--require-writes)
    SHARD_JSON_ARGS=(--require-shards)
  fi
  python3 "$CHECK" "$WORK_DIR/serve.json" --require-config index_backend \
    --require-workload --require-introspection "${SHARD_JSON_ARGS[@]}"
  if [[ "$MODE" == "writes" && "$BACKEND" != "sorted" && "$BACKEND" != "btree" ]]; then
    # The health-plane acceptance story: a learned structure degrades
    # measurably under ingest (probe-error p95 rises above zero in at
    # least one in-flight /indexes scrape) and the audited retrains swap
    # recovered structures in (the post-run p95 is the fresh fleet's).
    python3 - "$WORK_DIR/serve.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
g = {x["name"]: x["value"] for x in doc["metrics"]["gauges"]}
peak = g["ml4db.serve.probe_err_p95_peak"]
final = g["ml4db.serve.probe_err_p95"]
retrains = g["ml4db.serve.index_retrains"]
assert peak > 0, "learned backend under ingest never showed probe error"
assert retrains > 0, "no retrain recovered the degraded structure"
print(f"probe-error recovery OK: p95 peaked at {peak:.1f} rows under "
      f"ingest, {final:.1f} after {retrains:.0f} audited retrains")
PYEOF
  fi
  python3 "$CHECK" "$WORK_DIR/server.json" --require-server \
    --require-config index_backend "${WRITE_JSON_ARGS[@]}" \
    "${SHARD_JSON_ARGS[@]}"
else
  # ML4DB_OBS_DISABLED builds export no metrics by design.
  python3 "$CHECK" "$WORK_DIR/serve.json" --require-config index_backend
  python3 "$CHECK" "$WORK_DIR/server.json" --require-config index_backend
fi
echo "serve_smoke: OK"
