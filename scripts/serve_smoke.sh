#!/usr/bin/env bash
# End-to-end smoke of the query-serving front-end:
#   1. start ml4db_server on an ephemeral port (small synthetic db),
#   2. drive it with bench_serve (closed-loop, ~2s) and require zero lost
#      responses,
#   3. validate both JSON exports against the bench schema
#      (--require-server on the server side),
#   4. SIGTERM the server and require a clean drain and exit code 0.
#
# Usage: serve_smoke.sh BUILD_DIR [DURATION_MS]
# Runs under ASan in CI, so a leak or race in the shutdown path fails here.
set -euo pipefail

BUILD_DIR=${1:?usage: serve_smoke.sh BUILD_DIR [DURATION_MS]}
DURATION_MS=${2:-2000}
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVER="$BUILD_DIR/bin/ml4db_server"
BENCH="$BUILD_DIR/bench/bench_serve"
CHECK="$REPO_ROOT/scripts/check_bench_json.py"

WORK_DIR=$(mktemp -d -t serve_smoke.XXXXXX)
SERVER_PID=
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

PORT_FILE="$WORK_DIR/port"
"$SERVER" --port 0 --port-file "$PORT_FILE" \
  --fact-rows 4000 --dim-rows 500 \
  --json "$WORK_DIR/server.json" >"$WORK_DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the port file (the server writes it once it is listening).
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$WORK_DIR/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "FAIL: server never bound a port" >&2; exit 1; }
PORT=$(cat "$PORT_FILE")
echo "serve_smoke: server pid=$SERVER_PID port=$PORT"

"$BENCH" --port "$PORT" --connections 4 --duration-ms "$DURATION_MS" \
  --json "$WORK_DIR/serve.json"

# Overload burst: open-loop far above capacity with a small queue is the
# load-shedding path; bench_serve still exits 0 because sheds are answered.
"$BENCH" --port "$PORT" --connections 4 --duration-ms 500 \
  --qps 50000 --deadline-ms 1000

# Graceful shutdown: SIGTERM must drain and exit 0 (ASan adds leak checks).
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
SERVER_PID=
if [[ "$SERVER_STATUS" -ne 0 ]]; then
  echo "FAIL: server exited with $SERVER_STATUS after SIGTERM" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
fi
grep -q "draining" "$WORK_DIR/server.log" || {
  echo "FAIL: server log missing drain message" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}

python3 "$CHECK" "$WORK_DIR/serve.json"
if grep -q '"obs_enabled": true' "$WORK_DIR/server.json"; then
  python3 "$CHECK" "$WORK_DIR/server.json" --require-server
else
  # ML4DB_OBS_DISABLED builds export no metrics by design.
  python3 "$CHECK" "$WORK_DIR/server.json"
fi
echo "serve_smoke: OK"
