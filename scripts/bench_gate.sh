#!/usr/bin/env bash
# Serving-bench regression gate: run the standard mixed read/write
# bench_serve scenario against a freshly started server and diff the JSON
# export against the checked-in baseline (bench/baselines/serve_baseline.json)
# with compare_bench_json.py — >25% p95 latency or shed-rate regression
# (plus an absolute slack floor for noisy runners) fails the gate.
#
# Usage: bench_gate.sh BUILD_DIR [OUT_DIR] [--update] [extra compare flags...]
#   OUT_DIR   where server.json / serve_gate.json land (default
#             BUILD_DIR/bench_gate) — CI uploads this directory as an
#             artifact so a failing gate ships both sides of the diff.
#   --update  regenerate the baseline from this run instead of comparing
#             (commit the result to move the bar deliberately).
set -euo pipefail

BUILD_DIR=${1:?usage: bench_gate.sh BUILD_DIR [OUT_DIR] [--update] [flags...]}
shift
OUT_DIR="$BUILD_DIR/bench_gate"
if [[ $# -gt 0 && "${1:0:2}" != "--" ]]; then
  OUT_DIR=$1
  shift
fi
REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
SERVER="$BUILD_DIR/bin/ml4db_server"
BENCH="$BUILD_DIR/bench/bench_serve"
BASELINE="$REPO_ROOT/bench/baselines/serve_baseline.json"
mkdir -p "$OUT_DIR"

SERVER_PID=
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

PORT_FILE="$OUT_DIR/port"
rm -f "$PORT_FILE"
# The scenario is fixed (table sizes, duration, write mix, connection
# count) so candidate and baseline measure the same work. The merge
# threshold makes delta folds part of the measured steady state.
export ML4DB_DELTA_MERGE_THRESHOLD=256
"$SERVER" --port 0 --port-file "$PORT_FILE" \
  --fact-rows 4000 --dim-rows 500 \
  --retrain-interval-ms 300 \
  --json "$OUT_DIR/server.json" >"$OUT_DIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died during startup" >&2
    cat "$OUT_DIR/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "FAIL: server never bound a port" >&2; exit 1; }
PORT=$(cat "$PORT_FILE")

"$BENCH" --port "$PORT" --connections 4 --duration-ms 3000 \
  --write-ratio 0.2 --json "$OUT_DIR/serve_gate.json"

kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
SERVER_PID=
if [[ "$SERVER_STATUS" -ne 0 ]]; then
  echo "FAIL: server exited with $SERVER_STATUS after SIGTERM" >&2
  cat "$OUT_DIR/server.log" >&2
  exit 1
fi

python3 "$REPO_ROOT/scripts/compare_bench_json.py" "$OUT_DIR/serve_gate.json" \
  --baseline "$BASELINE" "$@"
