#!/usr/bin/env python3
"""Cross-run backend parity check for bench_index_static exports.

Usage:
  compare_backend_parity.py A.json B.json [C.json ...]

Each export must contain the "EXP-A2 engine IndexBackend parity" table
(written by bench_index_static). All runs must report identical
equal_hits / range_rows counts row-for-row: the probe workload is
seed-deterministic, so any divergence means a backend returned different
rows for the same query — a correctness bug in the IndexBackend layer,
not noise. Single-backend runs produce one-row tables, which is the CI
mode: run once per --index-backend value, then compare the JSONs here.
"""

import json
import sys


def parity_counts(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for t in doc.get("tables", []):
        if "IndexBackend parity" in t.get("title", ""):
            cols = t["columns"]
            eq = cols.index("equal_hits")
            rg = cols.index("range_rows")
            rows = [(r[eq], r[rg]) for r in t["rows"]]
            if not rows:
                raise SystemExit(f"FAIL [{path}]: parity table is empty")
            return rows
    raise SystemExit(f"FAIL [{path}]: no IndexBackend parity table found")


def main(argv):
    paths = argv[1:]
    if len(paths) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = parity_counts(paths[0])
    for path in paths[1:]:
        counts = parity_counts(path)
        if counts != baseline:
            print(f"FAIL: result counts diverge\n  {paths[0]}: {baseline}\n"
                  f"  {path}: {counts}", file=sys.stderr)
            return 1
    print(f"backend parity OK across {len(paths)} runs: {baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
