#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (format 0.0.4) scrape body.

Usage:
  check_prom_text.py FILE [flags]     validate a saved scrape (- = stdin)

Flags:
  --require NAME        fail unless metric family NAME is present
                        (repeatable; NAME is the sanitized Prometheus name,
                        e.g. ml4db_server_recent_qps)
  --require-nonzero NAME  like --require, but at least one sample of the
                        family must be > 0 (for counters/gauges) or have
                        _count > 0 (for histograms/summaries)
  --require-histogram NAME  like --require, but the family must also be
                        declared `# TYPE NAME histogram` (the cumulative
                        bucket contract is then checked as usual)
  --quiet               print nothing on success

Checks the format contract the admin plane's /metrics endpoint promises
(DESIGN.md "Live introspection plane"):
  - every sample line parses as `name{labels} value`
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - every family has exactly one `# TYPE` line, before its samples
  - histogram families: cumulative non-decreasing buckets ending at
    le="+Inf", +Inf bucket count == `_count`, and `_sum` present
  - summary families: quantile samples plus `_sum`/`_count`
  - no duplicate (name, labels) sample
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$")
LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class PromError(Exception):
    pass


def _parse_value(text, ctx):
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromError(f"{ctx}: unparseable sample value {text!r}")


def _parse_labels(raw, ctx):
    if raw is None or raw == "":
        return ()
    labels = []
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            raise PromError(f"{ctx}: bad label syntax at {raw[pos:]!r}")
        labels.append((m.group(1), m.group(2)))
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise PromError(f"{ctx}: expected ',' in labels at "
                                f"{raw[pos:]!r}")
            pos += 1
    return tuple(labels)


def _family(name):
    """Strips the histogram/summary sample suffix to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse(text):
    """Returns (types, samples): declared TYPE per family, and the ordered
    sample list as (name, labels, value) tuples."""
    types = {}
    samples = []
    seen_keys = set()
    families_with_samples = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        ctx = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise PromError(f"{ctx}: malformed TYPE line: {line!r}")
                _, _, fam, typ = parts
                if not NAME_RE.match(fam):
                    raise PromError(f"{ctx}: bad family name {fam!r}")
                if typ not in TYPES:
                    raise PromError(f"{ctx}: unknown type {typ!r}")
                if fam in types:
                    raise PromError(f"{ctx}: duplicate TYPE for {fam!r}")
                if fam in families_with_samples:
                    raise PromError(
                        f"{ctx}: TYPE for {fam!r} after its samples")
                types[fam] = typ
            continue  # HELP and other comments pass through
        m = SAMPLE_RE.match(line)
        if m is None:
            raise PromError(f"{ctx}: unparseable sample line: {line!r}")
        name = m.group("name")
        if not NAME_RE.match(name):
            raise PromError(f"{ctx}: bad metric name {name!r}")
        labels = _parse_labels(m.group("labels"), ctx)
        value = _parse_value(m.group("value"), ctx)
        key = (name, labels)
        if key in seen_keys:
            raise PromError(f"{ctx}: duplicate sample {name}{dict(labels)}")
        seen_keys.add(key)
        fam = _family(name) if _family(name) in types else name
        families_with_samples.add(fam)
        samples.append((name, labels, value))
    return types, samples


def _check_histogram(fam, samples):
    buckets = []  # (le, value) in document order
    count = None
    total = None
    for name, labels, value in samples:
        if name == fam + "_bucket":
            le = dict(labels).get("le")
            if le is None:
                raise PromError(f"{fam}: _bucket sample without le label")
            buckets.append((_parse_value(le, f"{fam} le"), value))
        elif name == fam + "_count":
            count = value
        elif name == fam + "_sum":
            total = value
    if not buckets:
        raise PromError(f"{fam}: histogram with no _bucket samples")
    if count is None or total is None:
        raise PromError(f"{fam}: histogram missing _count or _sum")
    prev_le, prev_v = -math.inf, 0.0
    for le, v in buckets:
        if le <= prev_le:
            raise PromError(f"{fam}: bucket bounds not ascending at le={le}")
        if v < prev_v:
            raise PromError(
                f"{fam}: cumulative bucket counts decreased at le={le}")
        prev_le, prev_v = le, v
    if not math.isinf(buckets[-1][0]):
        raise PromError(f"{fam}: last bucket must be le=\"+Inf\"")
    if buckets[-1][1] != count:
        raise PromError(f"{fam}: +Inf bucket ({buckets[-1][1]}) != "
                        f"_count ({count})")


def _check_summary(fam, samples):
    has_quantile = False
    count = None
    total = None
    for name, labels, value in samples:
        if name == fam and "quantile" in dict(labels):
            q = float(dict(labels)["quantile"])
            if not 0.0 <= q <= 1.0:
                raise PromError(f"{fam}: quantile {q} outside [0, 1]")
            has_quantile = True
        elif name == fam + "_count":
            count = value
        elif name == fam + "_sum":
            total = value
    if not has_quantile:
        raise PromError(f"{fam}: summary with no quantile samples")
    if count is None or total is None:
        raise PromError(f"{fam}: summary missing _count or _sum")


def validate(text, require=(), require_nonzero=(), require_histogram=()):
    types, samples = parse(text)
    by_family = {}
    for name, labels, value in samples:
        fam = _family(name) if _family(name) in types else name
        by_family.setdefault(fam, []).append((name, labels, value))

    for fam, typ in types.items():
        fam_samples = by_family.get(fam, [])
        if not fam_samples:
            raise PromError(f"{fam}: TYPE declared but no samples")
        if typ == "histogram":
            _check_histogram(fam, fam_samples)
        elif typ == "summary":
            _check_summary(fam, fam_samples)

    for fam in by_family:
        if fam not in types:
            raise PromError(f"{fam}: samples without a TYPE line")

    for fam in require:
        if fam not in by_family:
            raise PromError(f"--require: metric family {fam!r} not found")
    for fam in require_nonzero:
        fam_samples = by_family.get(fam)
        if not fam_samples:
            raise PromError(
                f"--require-nonzero: metric family {fam!r} not found")
        if types.get(fam) in ("histogram", "summary"):
            ok = any(name == fam + "_count" and value > 0
                     for name, _, value in fam_samples)
        else:
            ok = any(value > 0 for _, _, value in fam_samples)
        if not ok:
            raise PromError(
                f"--require-nonzero: every {fam!r} sample is zero")
    for fam in require_histogram:
        if fam not in by_family:
            raise PromError(
                f"--require-histogram: metric family {fam!r} not found")
        if types.get(fam) != "histogram":
            raise PromError(
                f"--require-histogram: {fam!r} declared as "
                f"{types.get(fam)!r}, want histogram")
    return types, samples


def main(argv):
    args = list(argv[1:])
    require = []
    require_nonzero = []
    require_histogram = []
    quiet = False
    paths = []
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--require":
            i += 1
            require.append(args[i])
        elif a == "--require-nonzero":
            i += 1
            require_nonzero.append(args[i])
        elif a == "--require-histogram":
            i += 1
            require_histogram.append(args[i])
        elif a == "--quiet":
            quiet = True
        else:
            paths.append(a)
        i += 1
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if paths[0] == "-":
        text = sys.stdin.read()
    else:
        with open(paths[0], "r", encoding="utf-8") as f:
            text = f.read()
    try:
        types, samples = validate(text, require, require_nonzero,
                                  require_histogram)
    except PromError as e:
        print(f"FAIL [{paths[0]}]: {e}", file=sys.stderr)
        return 1
    if not quiet:
        histos = sum(1 for t in types.values() if t == "histogram")
        summaries = sum(1 for t in types.values() if t == "summary")
        print(f"OK [{paths[0]}]: families={len(types)} samples={len(samples)} "
              f"histograms={histos} summaries={summaries}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
