#!/usr/bin/env python3
"""Validate the machine-readable bench export (BENCH_<name>.json, schema v1).

Usage:
  check_bench_json.py FILE.json [flags]          validate an existing export
  check_bench_json.py --run BIN [flags]          run BIN with --json to a temp
                                                 file, then validate that

Flags:
  --require-histogram   fail unless >= 1 latency histogram with p50/p95/p99
  --require-event       fail unless >= 1 typed event
  --require-server      fail unless the full serving metric set is present
                        (ml4db.server.{inflight,queue_depth,shed_total,
                        timeout_total} and the request latency histogram)
  --require-config KEY  fail unless the top-level "config" object carries
                        a non-empty string value for KEY (repeatable)
  --require-workload    fail unless the workload-plane scrape summary is
                        present (ml4db.serve.workload_shapes > 0 and the
                        samples/evictions/drift_events gauges exported —
                        bench_serve fills these from GET /workload)
  --require-introspection
                        fail unless the index-fleet scrape summary is
                        present (ml4db.serve.index_entries > 0 and the
                        probe_err_p95/probe_err_samples/index_retrains
                        gauges exported — bench_serve fills these from
                        GET /indexes)
  --require-writes      fail unless the write-path metric set is present
                        and writes actually executed (ml4db.server.
                        {writes_total>0,writes_rows_total,write_errors},
                        the write latency histogram, and the delta-store /
                        index-staleness gauges)
  --require-shards      fail unless the export is shard-aware: the config
                        object carries a non-empty "shards" value and at
                        least one exported metric name contains "shard"
                        (the ml4db.shard.* family on the server side,
                        ml4db.serve.shards on the load-gen side)
  --require-kernels     fail unless the scan-kernel comparison gauges are
                        present and live (ml4db.kernels.{scalar,vector}_
                        rows_per_sec > 0, speedup > 0, batch_rows > 1 —
                        bench_scan_kernels' headline selective-filter
                        combo)
  --quiet               print nothing on success

The schema is documented in DESIGN.md ("Observability"). This script is wired
into CTest so a drifting exporter fails the suite, and is usable standalone
against any bench output.
"""

import json
import os
import subprocess
import sys
import tempfile

EVENT_KINDS = {"drift", "retrain", "index_structure", "abort",
               "workload_drift", "retrain_swap", "custom"}

# The serving front-end's metric contract (DESIGN.md "Serving architecture").
# Whenever ANY ml4db.server.* metric appears in an export, the whole core
# set must be there — a partial set means an instrumentation regression.
SERVER_REQUIRED_COUNTERS = {
    "ml4db.server.shed_total",
    "ml4db.server.timeout_total",
}
SERVER_REQUIRED_GAUGES = {
    "ml4db.server.inflight",
    "ml4db.server.queue_depth",
}
SERVER_REQUIRED_HISTOGRAMS = {
    "ml4db.server.request_latency_us",
}


class SchemaError(Exception):
    pass


def _ensure(cond, msg):
    if not cond:
        raise SchemaError(msg)


def _check_name(name, ctx):
    _ensure(isinstance(name, str) and name, f"{ctx}: empty metric name")
    _ensure(name.startswith("ml4db."),
            f"{ctx}: metric name {name!r} must start with 'ml4db.'")


def _check_histogram(h, ctx):
    _check_name(h.get("name"), ctx)
    for field in ("count", "sum", "min", "max", "p50", "p95", "p99"):
        _ensure(isinstance(h.get(field), (int, float)),
                f"{ctx}: missing numeric field {field!r}")
    _ensure(h["count"] >= 0, f"{ctx}: negative count")
    if h["count"] > 0:
        _ensure(h["min"] <= h["p50"] <= h["p95"] <= h["p99"] <= h["max"] + 1e-9,
                f"{ctx}: quantiles not ordered "
                f"(min={h['min']} p50={h['p50']} p95={h['p95']} "
                f"p99={h['p99']} max={h['max']})")
    buckets = h.get("buckets")
    _ensure(isinstance(buckets, list), f"{ctx}: buckets must be a list")
    total = 0
    prev_bound = float("-inf")
    for b in buckets:
        le = b.get("le")
        if le == "+inf":
            bound = float("inf")
        else:
            _ensure(isinstance(le, (int, float)), f"{ctx}: bad bucket bound {le!r}")
            bound = float(le)
        _ensure(bound > prev_bound, f"{ctx}: bucket bounds not ascending")
        prev_bound = bound
        _ensure(isinstance(b.get("count"), int) and b["count"] > 0,
                f"{ctx}: sparse buckets must have positive integer counts")
        total += b["count"]
    _ensure(total == h["count"],
            f"{ctx}: bucket counts sum to {total}, expected {h['count']}")


def _check_server_metrics(metrics, required):
    """Checks the serving metric set. `required` forces presence even when
    no ml4db.server.* metric appears at all (--require-server)."""
    counters = {c["name"]: c for c in metrics["counters"]}
    gauges = {g["name"]: g for g in metrics["gauges"]}
    histograms = {h["name"]: h for h in metrics["histograms"]}
    all_names = set(counters) | set(gauges) | set(histograms)
    has_any = any(n.startswith("ml4db.server.") for n in all_names)
    if not has_any and not required:
        return
    _ensure(has_any, "--require-server: no ml4db.server.* metrics found")
    missing = sorted(
        (SERVER_REQUIRED_COUNTERS - set(counters))
        | (SERVER_REQUIRED_GAUGES - set(gauges))
        | (SERVER_REQUIRED_HISTOGRAMS - set(histograms)))
    _ensure(not missing,
            f"server metric set incomplete, missing: {', '.join(missing)}")
    # Cross-metric consistency: at most one response per decoded request.
    if ("ml4db.server.requests_total" in counters
            and "ml4db.server.responses_total" in counters):
        req = counters["ml4db.server.requests_total"]["value"]
        resp = counters["ml4db.server.responses_total"]["value"]
        _ensure(resp <= req,
                f"server responses_total ({resp}) exceeds requests_total ({req})")


WORKLOAD_REQUIRED_GAUGES = {
    "ml4db.serve.workload_shapes",
    "ml4db.serve.workload_samples",
    "ml4db.serve.workload_evictions",
    "ml4db.serve.workload_drift_events",
}


WRITE_REQUIRED_COUNTERS = {
    "ml4db.server.writes_total",
    "ml4db.server.writes_rows_total",
    "ml4db.server.write_errors",
}
WRITE_REQUIRED_GAUGES = {
    "ml4db.delta.rows",
    "ml4db.delta.deleted",
    "ml4db.index.stale_rows",
}
WRITE_REQUIRED_HISTOGRAMS = {
    "ml4db.server.write_latency_us",
}


def _check_write_metrics(metrics):
    """--require-writes: the server export must carry the full write-path
    set and show that at least one write actually executed. The delta and
    staleness gauges may legitimately read zero (a retrain fold right
    before shutdown sweeps the delta into rebuilt indexes), so only their
    presence is asserted."""
    counters = {c["name"]: c for c in metrics["counters"]}
    gauges = {g["name"]: g for g in metrics["gauges"]}
    histograms = {h["name"]: h for h in metrics["histograms"]}
    missing = sorted(
        (WRITE_REQUIRED_COUNTERS - set(counters))
        | (WRITE_REQUIRED_GAUGES - set(gauges))
        | (WRITE_REQUIRED_HISTOGRAMS - set(histograms)))
    _ensure(not missing,
            f"write metric set incomplete, missing: {', '.join(missing)}")
    writes = counters["ml4db.server.writes_total"]["value"]
    rows = counters["ml4db.server.writes_rows_total"]["value"]
    _ensure(writes > 0, "--require-writes: writes_total is zero")
    _ensure(rows > 0, "--require-writes: writes_rows_total is zero")
    hist = histograms["ml4db.server.write_latency_us"]
    _ensure(hist["count"] > 0,
            "--require-writes: write latency histogram is empty")
    _ensure(hist["count"] <= writes,
            f"write latency samples ({hist['count']}) exceed "
            f"writes_total ({writes})")


def _check_shard_metrics(doc):
    """--require-shards: the exporting process must have been shard-aware —
    its config names the shard layout and at least one shard metric was
    registered (they are pre-registered at zero, so presence is guaranteed
    even on runs that never trigger a shard-granular retrain)."""
    config = doc.get("config", {})
    _ensure(isinstance(config.get("shards"), str) and config.get("shards"),
            "--require-shards: config carries no 'shards' value")
    metrics = doc["metrics"]
    names = set()
    for key in ("counters", "gauges", "histograms"):
        names.update(m.get("name", "") for m in metrics[key])
    shard_names = sorted(n for n in names if "shard" in n)
    _ensure(shard_names,
            "--require-shards: no metric name containing 'shard' exported")


INTROSPECTION_REQUIRED_GAUGES = {
    "ml4db.serve.index_entries",
    "ml4db.serve.probe_err_p95",
    "ml4db.serve.probe_err_p95_peak",
    "ml4db.serve.probe_err_samples",
    "ml4db.serve.index_retrains",
}


def _check_introspection_metrics(metrics):
    """--require-introspection: bench_serve's /indexes scrape summary must
    be present, show the server actually exposed a fleet, and show probe
    telemetry flowing (the samples gauge is the peak across scrapes, so a
    swap-happy retrain loop can't zero it). Don't pass this flag on runs
    that throttle ML4DB_TRACE_SAMPLE_N hard."""
    gauges = {g["name"]: g for g in metrics["gauges"]}
    missing = sorted(INTROSPECTION_REQUIRED_GAUGES - set(gauges))
    _ensure(not missing,
            f"index-fleet scrape summary incomplete, missing: "
            f"{', '.join(missing)}")
    entries = gauges["ml4db.serve.index_entries"]["value"]
    _ensure(entries > 0, "--require-introspection: index_entries is zero")
    samples = gauges["ml4db.serve.probe_err_samples"]["value"]
    _ensure(samples > 0,
            "--require-introspection: no probe-error samples observed in "
            "any /indexes scrape")
    peak = gauges["ml4db.serve.probe_err_p95_peak"]["value"]
    _ensure(peak >= 0,
            f"probe_err_p95_peak ({peak}) must be non-negative")


KERNEL_REQUIRED_GAUGES = {
    "ml4db.kernels.scalar_rows_per_sec",
    "ml4db.kernels.vector_rows_per_sec",
    "ml4db.kernels.speedup",
    "ml4db.kernels.batch_rows",
}


def _check_kernel_metrics(metrics):
    """--require-kernels: bench_scan_kernels' headline gauges must be
    present and show both paths actually ran (rows/sec > 0) with a real
    batch size (> 1, else the "vectorized" path was the scalar loop). The
    1.5x speedup acceptance bar is a perf property checked by the bench
    gate, not a schema property, so only speedup > 0 is asserted here."""
    gauges = {g["name"]: g for g in metrics["gauges"]}
    missing = sorted(KERNEL_REQUIRED_GAUGES - set(gauges))
    _ensure(not missing,
            f"scan-kernel gauge set incomplete, missing: {', '.join(missing)}")
    for name in ("ml4db.kernels.scalar_rows_per_sec",
                 "ml4db.kernels.vector_rows_per_sec",
                 "ml4db.kernels.speedup"):
        _ensure(gauges[name]["value"] > 0,
                f"--require-kernels: {name} is not positive")
    _ensure(gauges["ml4db.kernels.batch_rows"]["value"] > 1,
            "--require-kernels: batch_rows <= 1 (vectorized path disabled)")


def _check_workload_metrics(metrics):
    """--require-workload: bench_serve's post-run /workload scrape summary
    must be present and show a non-trivial profile."""
    gauges = {g["name"]: g for g in metrics["gauges"]}
    missing = sorted(WORKLOAD_REQUIRED_GAUGES - set(gauges))
    _ensure(not missing,
            f"workload scrape summary incomplete, missing: "
            f"{', '.join(missing)}")
    shapes = gauges["ml4db.serve.workload_shapes"]["value"]
    samples = gauges["ml4db.serve.workload_samples"]["value"]
    _ensure(shapes > 0, "--require-workload: workload_shapes is zero")
    _ensure(samples >= shapes,
            f"workload_samples ({samples}) < workload_shapes ({shapes})")


def validate(doc, require_histogram=False, require_event=False,
             require_server=False, require_workload=False,
             require_introspection=False, require_writes=False,
             require_shards=False, require_kernels=False, require_config=()):
    _ensure(isinstance(doc, dict), "top level must be an object")
    _ensure(doc.get("schema_version") == 1,
            f"schema_version must be 1, got {doc.get('schema_version')!r}")
    _ensure(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")

    run = doc.get("run")
    _ensure(isinstance(run, dict), "run must be an object")
    _ensure(isinstance(run.get("argv"), list) and run["argv"],
            "run.argv must be a non-empty list")
    _ensure(all(isinstance(a, str) for a in run["argv"]),
            "run.argv entries must be strings")
    _ensure(isinstance(run.get("timestamp_unix"), (int, float))
            and run["timestamp_unix"] > 0,
            "run.timestamp_unix must be a positive number")
    _ensure(isinstance(run.get("obs_enabled"), bool),
            "run.obs_enabled must be a bool")
    _ensure(run.get("build") in ("release", "debug"),
            f"run.build must be release|debug, got {run.get('build')!r}")

    # "config" is optional (benches only emit it once something was set),
    # but when present it must be a flat string->string map.
    config = doc.get("config", {})
    _ensure(isinstance(config, dict), "config must be an object")
    for key, value in config.items():
        _ensure(isinstance(key, str) and key, "config keys must be strings")
        _ensure(isinstance(value, str),
                f"config[{key!r}] must be a string, got {type(value).__name__}")
    for key in require_config:
        _ensure(isinstance(config.get(key), str) and config.get(key),
                f"--require-config {key}: missing from config object")

    metrics = doc.get("metrics")
    _ensure(isinstance(metrics, dict), "metrics must be an object")
    for key in ("counters", "gauges", "histograms"):
        _ensure(isinstance(metrics.get(key), list),
                f"metrics.{key} must be a list")
    for c in metrics["counters"]:
        _check_name(c.get("name"), "counter")
        _ensure(isinstance(c.get("value"), (int, float)) and c["value"] >= 0,
                f"counter {c.get('name')}: bad value")
    for g in metrics["gauges"]:
        _check_name(g.get("name"), "gauge")
        _ensure(isinstance(g.get("value"), (int, float)),
                f"gauge {g.get('name')}: bad value")
    for h in metrics["histograms"]:
        _check_histogram(h, f"histogram {h.get('name')}")

    events = doc.get("events")
    _ensure(isinstance(events, list), "events must be a list")
    prev_seq = 0
    for e in events:
        _ensure(isinstance(e.get("seq"), int) and e["seq"] > prev_seq,
                "event seq must be strictly increasing positive integers")
        prev_seq = e["seq"]
        _ensure(e.get("kind") in EVENT_KINDS,
                f"event kind {e.get('kind')!r} not in {sorted(EVENT_KINDS)}")
        _ensure(isinstance(e.get("module"), str) and e["module"],
                "event module must be a non-empty string")
    _ensure(isinstance(doc.get("events_dropped"), int)
            and doc["events_dropped"] >= 0,
            "events_dropped must be a non-negative integer")
    for field in ("events_published", "events_capacity"):
        _ensure(isinstance(doc.get(field), int) and doc[field] >= 0,
                f"{field} must be a non-negative integer")
    # Ring accounting: every retained or dropped event was published, and
    # the ring never retains more than its capacity.
    _ensure(doc["events_published"] >= len(events) + doc["events_dropped"],
            f"events_published ({doc['events_published']}) < retained "
            f"({len(events)}) + dropped ({doc['events_dropped']})")
    if doc["events_capacity"] > 0:
        _ensure(len(events) <= doc["events_capacity"],
                f"{len(events)} events retained but capacity is "
                f"{doc['events_capacity']}")

    tables = doc.get("tables")
    _ensure(isinstance(tables, list), "tables must be a list")
    for t in tables:
        _ensure(isinstance(t.get("title"), str), "table title must be a string")
        cols = t.get("columns")
        _ensure(isinstance(cols, list) and cols, "table columns must be non-empty")
        for row in t.get("rows", []):
            _ensure(isinstance(row, list) and len(row) == len(cols),
                    f"table {t['title']!r}: row width {len(row)} != "
                    f"{len(cols)} columns")

    if "traces" in doc:
        _ensure(isinstance(doc["traces"], list) and doc["traces"],
                "traces, when present, must be a non-empty list")
        for tr in doc["traces"]:
            _ensure(isinstance(tr.get("spans"), list),
                    "trace.spans must be a list")

    _check_server_metrics(metrics, required=require_server)
    if require_workload:
        _check_workload_metrics(metrics)
    if require_introspection:
        _check_introspection_metrics(metrics)
    if require_writes:
        _check_write_metrics(metrics)
    if require_shards:
        _check_shard_metrics(doc)
    if require_kernels:
        _check_kernel_metrics(metrics)

    if require_histogram:
        good = [h for h in metrics["histograms"] if h["count"] > 0]
        _ensure(good, "--require-histogram: no histogram with samples found")
    if require_event:
        _ensure(events, "--require-event: events list is empty")


def main(argv):
    args = list(argv[1:])
    require_histogram = "--require-histogram" in args
    require_event = "--require-event" in args
    require_server = "--require-server" in args
    require_workload = "--require-workload" in args
    require_introspection = "--require-introspection" in args
    require_writes = "--require-writes" in args
    require_shards = "--require-shards" in args
    require_kernels = "--require-kernels" in args
    quiet = "--quiet" in args
    require_config = []
    filtered = []
    i = 0
    while i < len(args):
        if args[i] == "--require-config":
            if i + 1 >= len(args):
                print("--require-config needs a KEY", file=sys.stderr)
                return 2
            require_config.append(args[i + 1])
            i += 2
            continue
        filtered.append(args[i])
        i += 1
    args = [a for a in filtered
            if a not in ("--require-histogram", "--require-event",
                         "--require-server", "--require-workload",
                         "--require-introspection", "--require-writes",
                         "--require-shards", "--require-kernels", "--quiet")]

    if args and args[0] == "--run":
        if len(args) < 2:
            print("usage: check_bench_json.py --run BIN [flags]", file=sys.stderr)
            return 2
        binary = args[1]
        fd, path = tempfile.mkstemp(suffix=".json", prefix="bench_export_")
        os.close(fd)
        try:
            proc = subprocess.run([binary, "--json", path],
                                  stdout=subprocess.DEVNULL,
                                  stderr=subprocess.STDOUT, timeout=600)
            if proc.returncode != 0:
                print(f"FAIL: {binary} exited with {proc.returncode}",
                      file=sys.stderr)
                return 1
            source = f"{binary} --json"
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        finally:
            os.unlink(path)
    elif len(args) == 1:
        source = args[0]
        with open(source, "r", encoding="utf-8") as f:
            doc = json.load(f)
    else:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        validate(doc, require_histogram=require_histogram,
                 require_event=require_event, require_server=require_server,
                 require_workload=require_workload,
                 require_introspection=require_introspection,
                 require_writes=require_writes,
                 require_shards=require_shards,
                 require_kernels=require_kernels,
                 require_config=require_config)
    except SchemaError as e:
        print(f"FAIL [{source}]: {e}", file=sys.stderr)
        return 1
    if not quiet:
        n_hist = len(doc["metrics"]["histograms"])
        print(f"OK [{source}]: bench={doc['bench']} "
              f"counters={len(doc['metrics']['counters'])} "
              f"histograms={n_hist} events={len(doc['events'])} "
              f"tables={len(doc['tables'])}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
